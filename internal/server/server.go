// Package server puts the cluster dispatcher behind a network edge: a
// TCP server speaking the internal/wire protocol, with admission
// control in front of the cards so overload turns into an explicit
// RESOURCE_EXHAUSTED answer instead of unbounded queueing.
//
// Admission is two-layered. A server-wide semaphore bounds in-flight
// requests (Options.MaxInflight); a request that cannot take a slot is
// refused immediately. An admitted request is then submitted to the
// cluster without blocking — a full card queue surfaces as
// cluster.ErrQueueFull and maps to the same refusal status. Both layers
// reject rather than wait, so a saturated server keeps answering in
// microseconds and clients decide how to back off (internal/client
// retries with jittered exponential backoff).
//
// Deadlines travel end to end: the wire request carries a relative
// budget, the server turns it into a context deadline, the cluster
// worker refuses to execute a job whose context has already expired,
// and the server answers DEADLINE_EXCEEDED as soon as the budget runs
// out even if the job is still queued behind slower work.
//
// Shutdown drains: the listener closes, new requests on live
// connections get UNAVAILABLE, in-flight requests finish and flush
// their responses, then connections close.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// DefaultMaxInflight bounds concurrently admitted requests when
// Options.MaxInflight is zero.
const DefaultMaxInflight = 64

// DefaultBatchDwell is the batching window's dwell bound when
// Options.BatchWindow enables batching but BatchDwell is zero.
const DefaultBatchDwell = 200 * time.Microsecond

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// DrainMessage is the diagnostic a draining server attaches to its
// UNAVAILABLE refusals. Routers match it to tell a graceful drain
// (stop sending, node is leaving deliberately) from a crashed or
// overloaded backend — the message is part of the protocol surface,
// not free-form text.
const DrainMessage = "server draining"

// Options tunes the server. The zero value of every field selects a
// default.
type Options struct {
	// MaxInflight bounds admitted requests across all connections
	// (default DefaultMaxInflight). Excess requests are refused with
	// StatusResourceExhausted.
	MaxInflight int
	// BatchWindow, when > 1, enables cross-client coalescing: up to
	// BatchWindow admitted same-function requests — from any mix of
	// connections — are collected into one window and submitted to the
	// cluster as a single batch, so the whole window shares one card
	// queue slot, one configuration check and one coalesced run.
	// 0 or 1 (the default) dispatches each request individually.
	BatchWindow int
	// BatchDwell bounds how long the first request of a window waits
	// for company before the window flushes anyway (default
	// DefaultBatchDwell). Only meaningful with BatchWindow > 1.
	BatchDwell time.Duration
	// Metrics receives the server series (nil = no recording).
	Metrics *metrics.Registry
	// Trace receives one span per request, carrying the request id,
	// function, status and serving card (nil = no recording).
	Trace *trace.Log
	// Tracer receives the server's distributed-trace spans: one rpc
	// span per request (joining the client's trace when the wire frame
	// carried a context, rooting a server-side trace otherwise), with
	// queue-wait, service and per-phase card children (nil = no
	// tracing).
	Tracer *trace.Tracer
}

// Server serves wire-protocol requests by dispatching onto a cluster.
type Server struct {
	cl    *cluster.Cluster
	opts  Options
	sem   chan struct{}
	batch *batcher // nil unless Options.BatchWindow > 1

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	inflight sync.WaitGroup // admitted requests
	connWG   sync.WaitGroup // connection handlers

	// reqMu guards reqs, the live table behind /debug/requests: every
	// admitted request registers here for its whole service time.
	reqMu sync.Mutex
	reqs  map[*inflightReq]struct{}

	// hookAdmitted, when set by tests, runs in the request goroutine
	// after admission and before dispatch — the deterministic way to
	// hold the semaphore and observe saturation.
	hookAdmitted func(*wire.Request)
}

// New builds a server over cl. The cluster stays owned by the caller
// (Shutdown does not close it), so one cluster can outlive many
// listeners.
func New(cl *cluster.Cluster, opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.BatchDwell <= 0 {
		opts.BatchDwell = DefaultBatchDwell
	}
	s := &Server{
		cl:    cl,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInflight),
		conns: make(map[net.Conn]struct{}),
		reqs:  make(map[*inflightReq]struct{}),
	}
	if opts.BatchWindow > 1 {
		s.batch = newBatcher(cl, opts.BatchWindow, opts.BatchDwell, opts.Metrics, opts.Tracer)
	}
	return s
}

// Serve accepts connections on ln until Shutdown or Close, then
// returns ErrServerClosed. One server serves at most one listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		if s.opts.Metrics != nil {
			s.opts.Metrics.Counter("agile_server_accepted_total").Inc()
			s.opts.Metrics.Gauge("agile_server_connections").Inc()
		}
		go s.handleConn(conn)
	}
}

// handleConn reads frames off one connection. Requests are handled
// concurrently (a connection may pipeline requests and receive the
// responses out of order); responses serialise through one write lock.
// Request payloads are zero-copy: each frame's payload aliases a
// pooled read buffer that is held until that request's response is
// written, so pipelined bytes flow from the socket into the cluster
// without an intermediate copy. A protocol error — broken framing, or
// a request id already in flight on this connection — poisons the
// stream, so the connection closes.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		if s.opts.Metrics != nil {
			s.opts.Metrics.Gauge("agile_server_connections").Dec()
		}
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var wmu sync.Mutex
	write := func(resp *wire.Response) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := wire.WriteResponse(bw, resp); err != nil {
			return
		}
		bw.Flush()
	}
	var idMu sync.Mutex
	ids := make(map[uint64]struct{}) // request ids currently in flight on this conn
	for {
		req := new(wire.AnyRequest)
		fr, err := wire.ReadAnyRequestFrame(br, req)
		if err != nil {
			if s.opts.Metrics != nil && !errors.Is(err, net.ErrClosed) {
				s.opts.Metrics.Counter("agile_server_decode_errors_total").Inc()
			}
			return
		}
		id := req.ID()
		idMu.Lock()
		_, dup := ids[id]
		if !dup {
			ids[id] = struct{}{}
		}
		idMu.Unlock()
		if dup {
			// Two in-flight requests with one id would make the response
			// stream ambiguous — a protocol error, answered explicitly
			// (never a hang) and fatal to the connection.
			fr.Release()
			if s.opts.Metrics != nil {
				s.opts.Metrics.Counter("agile_server_protocol_errors_total").Inc()
			}
			s.refuse(id, req.Fn(), write, wire.StatusInvalidArgument,
				fmt.Sprintf("request id %d already in flight on this connection", id))
			return
		}
		finish := func() {
			idMu.Lock()
			delete(ids, id)
			idMu.Unlock()
		}
		s.handleRequest(req, fr, write, finish, c.RemoteAddr().String())
	}
}

// handleRequest admits one request and, if admitted, dispatches it in
// its own goroutine. The draining check, semaphore acquisition and
// in-flight registration happen atomically under mu so Shutdown's
// drain wait cannot race a late admission.
func (s *Server) handleRequest(req *wire.AnyRequest, fr wire.Frame, write func(*wire.Response), finish func(), remote string) {
	id, fn := req.ID(), req.Fn()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.refuse(id, fn, write, wire.StatusUnavailable, DrainMessage)
		finish()
		fr.Release()
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.mu.Unlock()
		s.refuse(id, fn, write, wire.StatusResourceExhausted,
			fmt.Sprintf("server at capacity (%d in flight)", cap(s.sem)))
		finish()
		fr.Release()
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	if s.opts.Metrics != nil {
		s.opts.Metrics.Gauge("agile_server_inflight").Inc()
	}
	go func() {
		defer func() {
			<-s.sem
			s.inflight.Done()
			if s.opts.Metrics != nil {
				s.opts.Metrics.Gauge("agile_server_inflight").Dec()
			}
		}()
		// The request's budget starts at admission, so time spent in
		// dispatch counts against the deadline the client asked for.
		ctx := context.Background()
		if dl := req.Deadline(); dl > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, dl)
			defer cancel()
		}
		// The admission span: join the client's trace when the wire
		// frame carried a context, root a server-side trace otherwise.
		// A nil Tracer (or a sampled-out decision) yields a zero ref and
		// every downstream span call is a no-op.
		var ref trace.SpanRef
		if tc := req.TraceContext(); tc.Valid() {
			ref = s.opts.Tracer.StartRemote(tc.TraceID, tc.SpanID,
				tc.Sampled(), "rpc", "server", fn)
		} else {
			ref = s.opts.Tracer.StartRoot("rpc", "server", fn)
		}
		start := time.Now() //lint:wallclock served latency is wall time seen by network clients
		entry := &inflightReq{id: id, fn: fn, conn: remote, start: start, traceID: ref.TraceID}
		s.reqMu.Lock()
		s.reqs[entry] = struct{}{}
		s.reqMu.Unlock()
		if s.hookAdmitted != nil && !req.IsChain {
			s.hookAdmitted(&req.Plain)
		}
		status, card, payload := s.execute(ctx, req, ref)
		write(&wire.Response{ID: id, Status: status, Card: card, Payload: payload})
		// The response is on the wire: the id may be reused and the
		// request's read buffer (aliased by its payload) recycled.
		finish()
		fr.Release()
		s.reqMu.Lock()
		delete(s.reqs, entry)
		s.reqMu.Unlock()
		s.opts.Tracer.End(ref, statusLabel(status))
		s.observeTraced(id, fn, status, card, time.Since(start), ref.TraceID) //lint:wallclock served latency is wall time seen by network clients
	}()
}

// statusLabel renders a wire status as a span status string ("ok"
// keeps the trace out of the error ring).
func statusLabel(st wire.Status) string {
	if st == wire.StatusOK {
		return "ok"
	}
	return st.String()
}

// refuse answers a request that was never admitted.
func (s *Server) refuse(id uint64, fn uint16, write func(*wire.Response), st wire.Status, msg string) {
	write(&wire.Response{ID: id, Status: st, Card: -1, Payload: []byte(msg)})
	s.observe(id, fn, st, -1, 0)
}

// execute runs one admitted request on the cluster, mapping dispatcher
// errors to wire statuses. ctx carries the request's deadline; ref the
// request's server span (zero when the request is not sampled). A chain
// request submits its whole stage list as one dispatcher job (the
// cluster worker coalesces consecutive same-chain submissions into a
// pipelined chain batch); a plain request goes through the batcher when
// one is configured.
func (s *Server) execute(ctx context.Context, req *wire.AnyRequest, ref trace.SpanRef) (wire.Status, int16, []byte) {
	var p *cluster.Pending
	switch {
	case req.IsChain:
		if len(req.Chain.Payload) == 0 {
			return wire.StatusInvalidArgument, -1, []byte("empty payload")
		}
		p = s.cl.SubmitChainContextTraced(ctx, req.Chain.Stages, req.Chain.Payload, false, ref)
	case len(req.Plain.Payload) == 0:
		return wire.StatusInvalidArgument, -1, []byte("empty payload")
	case s.batch != nil:
		p = s.batch.submit(ctx, &req.Plain, ref)
	default:
		p = s.cl.SubmitContextTraced(ctx, req.Plain.Fn, req.Plain.Payload, false, ref)
	}
	select {
	case <-p.Done():
	case <-ctx.Done():
		// The budget ran out while the job sat in a card queue. Answer
		// now; the worker will discard the expired job when it reaches
		// it.
		return wire.StatusDeadlineExceeded, -1, []byte(ctx.Err().Error())
	}
	res, card, err := p.Wait()
	s.addDispatchSpans(req.Fn(), ref, p, res, card)
	if err != nil {
		return statusOf(err), int16(card), []byte(err.Error())
	}
	return wire.StatusOK, int16(card), res.Output
}

// addDispatchSpans attaches the dispatcher's view of a settled job to
// the request's trace: a queue-wait span and a service span that tile
// the job's whole residency (their durations sum to the time between
// enqueue and the card finishing), plus one virtual child per card
// phase from the call's breakdown. No-op for unsampled requests.
func (s *Server) addDispatchSpans(fn uint16, ref trace.SpanRef, p *cluster.Pending, res *core.CallResult, card int) {
	if !ref.Valid() {
		return
	}
	sub, st, dn := p.TraceTimes()
	if sub == 0 || st == 0 {
		return // never reached a worker (routing or enqueue failure)
	}
	s.opts.Tracer.Add(ref, trace.Span{
		Name: "queue-wait", Layer: "cluster", Fn: fn, Card: card,
		StartNS: sub, DurNS: st - sub,
	})
	sref := s.opts.Tracer.Add(ref, trace.Span{
		Name: "service", Layer: "cluster", Fn: fn, Card: card,
		StartNS: st, DurNS: dn - st,
	})
	if res == nil {
		return
	}
	for ph := 0; ph < sim.NumPhases; ph++ {
		if d := res.Breakdown.Get(sim.Phase(ph)); d > 0 {
			s.opts.Tracer.Add(sref, trace.Span{
				Name: sim.Phase(ph).String(), Layer: "card", Fn: fn, Card: card,
				VirtPS: uint64(d),
			})
		}
	}
}

// statusOf maps dispatcher and context errors onto the wire vocabulary.
func statusOf(err error) wire.Status {
	switch {
	case errors.Is(err, cluster.ErrUnknownFunction):
		return wire.StatusNotFound
	case errors.Is(err, cluster.ErrQueueFull):
		return wire.StatusResourceExhausted
	case errors.Is(err, cluster.ErrStopped):
		return wire.StatusUnavailable
	case errors.Is(err, cluster.ErrChainSplit):
		return wire.StatusInvalidArgument
	case errors.Is(err, context.DeadlineExceeded):
		return wire.StatusDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return wire.StatusUnavailable
	default:
		return wire.StatusInternal
	}
}

// observe records one finished (or refused) request into the metrics
// and trace sinks. Server latency is wall-clock — the network edge has
// no virtual clock — stored in the same picosecond unit the virtual
// histograms use.
func (s *Server) observe(id uint64, fn uint16, st wire.Status, card int16, elapsed time.Duration) {
	s.observeTraced(id, fn, st, card, elapsed, 0)
}

// observeTraced is observe with a trace-id exemplar: a sampled
// request stamps its trace id onto the latency histogram, linking the
// aggregate back to the concrete trace in /debug/traces.
func (s *Server) observeTraced(id uint64, fn uint16, st wire.Status, card int16, elapsed time.Duration, traceID uint64) {
	if s.opts.Metrics != nil {
		lbl := metrics.L("status", st.String())
		s.opts.Metrics.Counter("agile_server_requests_total", lbl).Inc()
		if elapsed > 0 {
			s.opts.Metrics.Histogram("agile_server_request_seconds", lbl).
				ObserveExemplar(sim.Time(elapsed.Nanoseconds())*sim.Nanosecond, traceID)
		}
	}
	s.opts.Trace.Record(trace.Event{
		Kind:   trace.KindSpan,
		Fn:     fn,
		Card:   int(card),
		Detail: fmt.Sprintf("rpc req=%d status=%s", id, st),
		DurPS:  uint64(elapsed.Nanoseconds()) * 1000,
	})
}

// Shutdown gracefully drains the server: the listener closes, new
// requests are refused with UNAVAILABLE, admitted requests finish and
// flush their responses, then connections close. It returns ctx.Err()
// if the drain outlives ctx (connections are then closed abruptly).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	if err == nil {
		s.connWG.Wait()
	}
	return err
}

// Draining reports whether Shutdown or Close has begun — once true,
// every new request is refused with UNAVAILABLE + DrainMessage.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close shuts the server down without waiting for in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// inflightReq is one row of the live request table: what the server is
// working on right now, for /debug/requests.
type inflightReq struct {
	id      uint64
	fn      uint16
	conn    string
	start   time.Time
	traceID uint64
}

// InflightRequest is one /debug/requests row.
type InflightRequest struct {
	ID      uint64 `json:"id"`
	Fn      uint16 `json:"fn"`
	Conn    string `json:"conn"`
	AgeMS   int64  `json:"age_ms"`
	TraceID string `json:"trace_id,omitempty"`
}

// InflightRequests snapshots the live request table, oldest first.
func (s *Server) InflightRequests() []InflightRequest {
	now := time.Now() //lint:wallclock request age is operator-facing wall time
	s.reqMu.Lock()
	rows := make([]InflightRequest, 0, len(s.reqs))
	for e := range s.reqs {
		row := InflightRequest{
			ID:    e.id,
			Fn:    e.fn,
			Conn:  e.conn,
			AgeMS: now.Sub(e.start).Milliseconds(),
		}
		if e.traceID != 0 {
			row.TraceID = "0x" + strconv.FormatUint(e.traceID, 16)
		}
		rows = append(rows, row)
	}
	s.reqMu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].AgeMS != rows[j].AgeMS {
			return rows[i].AgeMS > rows[j].AgeMS
		}
		return rows[i].ID < rows[j].ID
	})
	return rows
}

// DebugRequestsHandler serves the in-flight request table as JSON —
// the /debug/requests endpoint: every admitted request with its age,
// function, source connection and (when sampled) trace id.
func (s *Server) DebugRequestsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Inflight int               `json:"inflight"`
			Requests []InflightRequest `json:"requests"`
		}{Inflight: len(s.sem), Requests: s.InflightRequests()})
	})
}
