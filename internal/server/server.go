// Package server puts the cluster dispatcher behind a network edge: a
// TCP server speaking the internal/wire protocol, with admission
// control in front of the cards so overload turns into an explicit
// RESOURCE_EXHAUSTED answer instead of unbounded queueing.
//
// Admission is two-layered. A server-wide semaphore bounds in-flight
// requests (Options.MaxInflight); a request that cannot take a slot is
// refused immediately. An admitted request is then submitted to the
// cluster without blocking — a full card queue surfaces as
// cluster.ErrQueueFull and maps to the same refusal status. Both layers
// reject rather than wait, so a saturated server keeps answering in
// microseconds and clients decide how to back off (internal/client
// retries with jittered exponential backoff).
//
// Deadlines travel end to end: the wire request carries a relative
// budget, the server turns it into a context deadline, the cluster
// worker refuses to execute a job whose context has already expired,
// and the server answers DEADLINE_EXCEEDED as soon as the budget runs
// out even if the job is still queued behind slower work.
//
// Shutdown drains: the listener closes, new requests on live
// connections get UNAVAILABLE, in-flight requests finish and flush
// their responses, then connections close.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"agilefpga/internal/cluster"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// DefaultMaxInflight bounds concurrently admitted requests when
// Options.MaxInflight is zero.
const DefaultMaxInflight = 64

// DefaultBatchDwell is the batching window's dwell bound when
// Options.BatchWindow enables batching but BatchDwell is zero.
const DefaultBatchDwell = 200 * time.Microsecond

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Options tunes the server. The zero value of every field selects a
// default.
type Options struct {
	// MaxInflight bounds admitted requests across all connections
	// (default DefaultMaxInflight). Excess requests are refused with
	// StatusResourceExhausted.
	MaxInflight int
	// BatchWindow, when > 1, enables cross-client coalescing: up to
	// BatchWindow admitted same-function requests — from any mix of
	// connections — are collected into one window and submitted to the
	// cluster as a single batch, so the whole window shares one card
	// queue slot, one configuration check and one coalesced run.
	// 0 or 1 (the default) dispatches each request individually.
	BatchWindow int
	// BatchDwell bounds how long the first request of a window waits
	// for company before the window flushes anyway (default
	// DefaultBatchDwell). Only meaningful with BatchWindow > 1.
	BatchDwell time.Duration
	// Metrics receives the server series (nil = no recording).
	Metrics *metrics.Registry
	// Trace receives one span per request, carrying the request id,
	// function, status and serving card (nil = no recording).
	Trace *trace.Log
}

// Server serves wire-protocol requests by dispatching onto a cluster.
type Server struct {
	cl    *cluster.Cluster
	opts  Options
	sem   chan struct{}
	batch *batcher // nil unless Options.BatchWindow > 1

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	inflight sync.WaitGroup // admitted requests
	connWG   sync.WaitGroup // connection handlers

	// hookAdmitted, when set by tests, runs in the request goroutine
	// after admission and before dispatch — the deterministic way to
	// hold the semaphore and observe saturation.
	hookAdmitted func(*wire.Request)
}

// New builds a server over cl. The cluster stays owned by the caller
// (Shutdown does not close it), so one cluster can outlive many
// listeners.
func New(cl *cluster.Cluster, opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.BatchDwell <= 0 {
		opts.BatchDwell = DefaultBatchDwell
	}
	s := &Server{
		cl:    cl,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInflight),
		conns: make(map[net.Conn]struct{}),
	}
	if opts.BatchWindow > 1 {
		s.batch = newBatcher(cl, opts.BatchWindow, opts.BatchDwell, opts.Metrics)
	}
	return s
}

// Serve accepts connections on ln until Shutdown or Close, then
// returns ErrServerClosed. One server serves at most one listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		if s.opts.Metrics != nil {
			s.opts.Metrics.Counter("agile_server_accepted_total").Inc()
			s.opts.Metrics.Gauge("agile_server_connections").Inc()
		}
		go s.handleConn(conn)
	}
}

// handleConn reads frames off one connection. Requests are handled
// concurrently (a connection may pipeline requests and receive the
// responses out of order); responses serialise through one write lock.
// Request payloads are zero-copy: each frame's payload aliases a
// pooled read buffer that is held until that request's response is
// written, so pipelined bytes flow from the socket into the cluster
// without an intermediate copy. A protocol error — broken framing, or
// a request id already in flight on this connection — poisons the
// stream, so the connection closes.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		if s.opts.Metrics != nil {
			s.opts.Metrics.Gauge("agile_server_connections").Dec()
		}
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var wmu sync.Mutex
	write := func(resp *wire.Response) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := wire.WriteResponse(bw, resp); err != nil {
			return
		}
		bw.Flush()
	}
	var idMu sync.Mutex
	ids := make(map[uint64]struct{}) // request ids currently in flight on this conn
	for {
		req := new(wire.Request)
		fr, err := wire.ReadRequestFrame(br, req)
		if err != nil {
			if s.opts.Metrics != nil && !errors.Is(err, net.ErrClosed) {
				s.opts.Metrics.Counter("agile_server_decode_errors_total").Inc()
			}
			return
		}
		idMu.Lock()
		_, dup := ids[req.ID]
		if !dup {
			ids[req.ID] = struct{}{}
		}
		idMu.Unlock()
		if dup {
			// Two in-flight requests with one id would make the response
			// stream ambiguous — a protocol error, answered explicitly
			// (never a hang) and fatal to the connection.
			fr.Release()
			if s.opts.Metrics != nil {
				s.opts.Metrics.Counter("agile_server_protocol_errors_total").Inc()
			}
			s.refuse(req, write, wire.StatusInvalidArgument,
				fmt.Sprintf("request id %d already in flight on this connection", req.ID))
			return
		}
		finish := func() {
			idMu.Lock()
			delete(ids, req.ID)
			idMu.Unlock()
		}
		s.handleRequest(req, fr, write, finish)
	}
}

// handleRequest admits one request and, if admitted, dispatches it in
// its own goroutine. The draining check, semaphore acquisition and
// in-flight registration happen atomically under mu so Shutdown's
// drain wait cannot race a late admission.
func (s *Server) handleRequest(req *wire.Request, fr wire.Frame, write func(*wire.Response), finish func()) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.refuse(req, write, wire.StatusUnavailable, "server draining")
		finish()
		fr.Release()
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.mu.Unlock()
		s.refuse(req, write, wire.StatusResourceExhausted,
			fmt.Sprintf("server at capacity (%d in flight)", cap(s.sem)))
		finish()
		fr.Release()
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	if s.opts.Metrics != nil {
		s.opts.Metrics.Gauge("agile_server_inflight").Inc()
	}
	go func() {
		defer func() {
			<-s.sem
			s.inflight.Done()
			if s.opts.Metrics != nil {
				s.opts.Metrics.Gauge("agile_server_inflight").Dec()
			}
		}()
		// The request's budget starts at admission, so time spent in
		// dispatch counts against the deadline the client asked for.
		ctx := context.Background()
		if req.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, req.Deadline)
			defer cancel()
		}
		if s.hookAdmitted != nil {
			s.hookAdmitted(req)
		}
		start := time.Now() //lint:wallclock served latency is wall time seen by network clients
		status, card, payload := s.execute(ctx, req)
		write(&wire.Response{ID: req.ID, Status: status, Card: card, Payload: payload})
		// The response is on the wire: the id may be reused and the
		// request's read buffer (aliased by its payload) recycled.
		finish()
		fr.Release()
		s.observe(req, status, card, time.Since(start)) //lint:wallclock served latency is wall time seen by network clients
	}()
}

// refuse answers a request that was never admitted.
func (s *Server) refuse(req *wire.Request, write func(*wire.Response), st wire.Status, msg string) {
	write(&wire.Response{ID: req.ID, Status: st, Card: -1, Payload: []byte(msg)})
	s.observe(req, st, -1, 0)
}

// execute runs one admitted request on the cluster, mapping dispatcher
// errors to wire statuses. ctx carries the request's deadline.
func (s *Server) execute(ctx context.Context, req *wire.Request) (wire.Status, int16, []byte) {
	if len(req.Payload) == 0 {
		return wire.StatusInvalidArgument, -1, []byte("empty payload")
	}
	var p *cluster.Pending
	if s.batch != nil {
		p = s.batch.submit(ctx, req)
	} else {
		p = s.cl.SubmitContext(ctx, req.Fn, req.Payload, false)
	}
	select {
	case <-p.Done():
	case <-ctx.Done():
		// The budget ran out while the job sat in a card queue. Answer
		// now; the worker will discard the expired job when it reaches
		// it.
		return wire.StatusDeadlineExceeded, -1, []byte(ctx.Err().Error())
	}
	res, card, err := p.Wait()
	if err != nil {
		return statusOf(err), int16(card), []byte(err.Error())
	}
	return wire.StatusOK, int16(card), res.Output
}

// statusOf maps dispatcher and context errors onto the wire vocabulary.
func statusOf(err error) wire.Status {
	switch {
	case errors.Is(err, cluster.ErrUnknownFunction):
		return wire.StatusNotFound
	case errors.Is(err, cluster.ErrQueueFull):
		return wire.StatusResourceExhausted
	case errors.Is(err, cluster.ErrStopped):
		return wire.StatusUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return wire.StatusDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return wire.StatusUnavailable
	default:
		return wire.StatusInternal
	}
}

// observe records one finished (or refused) request into the metrics
// and trace sinks. Server latency is wall-clock — the network edge has
// no virtual clock — stored in the same picosecond unit the virtual
// histograms use.
func (s *Server) observe(req *wire.Request, st wire.Status, card int16, elapsed time.Duration) {
	if s.opts.Metrics != nil {
		lbl := metrics.L("status", st.String())
		s.opts.Metrics.Counter("agile_server_requests_total", lbl).Inc()
		if elapsed > 0 {
			s.opts.Metrics.Histogram("agile_server_request_seconds", lbl).
				Observe(sim.Time(elapsed.Nanoseconds()) * sim.Nanosecond)
		}
	}
	s.opts.Trace.Record(trace.Event{
		Kind:   trace.KindSpan,
		Fn:     req.Fn,
		Card:   int(card),
		Detail: fmt.Sprintf("rpc req=%d status=%s", req.ID, st),
		DurPS:  uint64(elapsed.Nanoseconds()) * 1000,
	})
}

// Shutdown gracefully drains the server: the listener closes, new
// requests are refused with UNAVAILABLE, admitted requests finish and
// flush their responses, then connections close. It returns ctx.Err()
// if the drain outlives ctx (connections are then closed abruptly).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	if err == nil {
		s.connWG.Wait()
	}
	return err
}

// Close shuts the server down without waiting for in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}
