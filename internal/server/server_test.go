package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/client"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/wire"
)

// harness boots a cluster and a server on a real TCP listener.
type harness struct {
	cl   *cluster.Cluster
	srv  *Server
	addr string
	reg  *metrics.Registry
	serr chan error
}

// newHarness boots the stack; hook, if non-nil, becomes the server's
// admission hook (installed before Serve starts, so its reads are
// ordered by the goroutine launch).
func newHarness(t *testing.T, cards int, opts Options, hook func(*wire.Request)) *harness {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg := core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}, Metrics: reg}
	cl, err := cluster.New(cards, cluster.ModeAffinity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Metrics == nil {
		opts.Metrics = reg
	}
	srv := New(cl, opts)
	srv.hookAdmitted = hook
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{cl: cl, srv: srv, addr: ln.Addr().String(), reg: reg, serr: make(chan error, 1)}
	go func() { h.serr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-h.serr
		cl.Close()
	})
	return h
}

// TestEndToEndMatchesDirectCall proves the acceptance criterion: bytes
// through the network path equal bytes from a direct cluster call.
func TestEndToEndMatchesDirectCall(t *testing.T) {
	h := newHarness(t, 2, Options{}, nil)
	c, err := client.Dial(h.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, f := range []*algos.Function{algos.CRC32(), algos.MD5()} {
		in := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		direct, _, err := h.cl.Call(f.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		got, card, err := c.Call(context.Background(), f.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, direct.Output) {
			t.Fatalf("%s: network output %x != direct output %x", f.Name(), got, direct.Output)
		}
		if card < 0 || card >= 2 {
			t.Fatalf("served by card %d of a 2-card cluster", card)
		}
	}
	if n := h.reg.Counter("agile_server_requests_total", metrics.L("status", "ok")).Value(); n != 2 {
		t.Fatalf("ok counter = %d, want 2", n)
	}
}

func TestConcurrentClients(t *testing.T) {
	h := newHarness(t, 2, Options{MaxInflight: 128}, nil)
	const clients, calls = 8, 25
	fn := algos.CRC32()
	in := []byte{9, 9, 9, 9}
	want, _ := fn.Exec(in)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(h.addr, client.Options{PoolSize: 2})
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < calls; j++ {
				out, _, err := c.Call(context.Background(), fn.ID(), in)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(out, want) {
					errc <- errors.New("wrong output")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestSaturationRefusesThenRetrySucceeds injects deterministic
// saturation: the admission hook parks the only in-flight slot on a
// gate, a no-retry client observes RESOURCE_EXHAUSTED, and a retrying
// client's backoff bridges the gate's release.
func TestSaturationRefusesThenRetrySucceeds(t *testing.T) {
	gate := make(chan struct{})
	h := newHarness(t, 1, Options{MaxInflight: 1}, func(req *wire.Request) {
		if req.Fn == algos.MD5().ID() { // only the parked request blocks
			<-gate
		}
	})
	in := []byte{1, 2, 3, 4}

	parked, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer parked.Close()
	parkedDone := make(chan error, 1)
	go func() {
		_, _, err := parked.Call(context.Background(), algos.MD5().ID(), in)
		parkedDone <- err
	}()

	// Wait until the parked request holds the slot.
	waitFor(t, func() bool {
		return h.reg.Gauge("agile_server_inflight").Value() == 1
	})

	// A client without retries sees the explicit refusal, not a hang.
	noRetry, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer noRetry.Close()
	_, _, err = noRetry.Call(context.Background(), algos.CRC32().ID(), in)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusResourceExhausted {
		t.Fatalf("saturated call err = %v, want RESOURCE_EXHAUSTED", err)
	}

	// A retrying client keeps backing off; release the gate after its
	// first observed retry and the call must succeed.
	retries := make(chan int, 16)
	retrier, err := client.Dial(h.addr, client.Options{
		MaxRetries:  8,
		BaseBackoff: 2 * time.Millisecond,
		OnRetry: func(attempt int, err error) {
			select {
			case retries <- attempt:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	callDone := make(chan error, 1)
	var out []byte
	go func() {
		var err error
		out, _, err = retrier.Call(context.Background(), algos.CRC32().ID(), in)
		callDone <- err
	}()
	select {
	case <-retries:
	case <-time.After(5 * time.Second):
		t.Fatal("no retry observed while saturated")
	}
	close(gate)
	if err := <-callDone; err != nil {
		t.Fatalf("retrying call failed after release: %v", err)
	}
	want, _ := algos.CRC32().Exec(in)
	if !bytes.Equal(out, want) {
		t.Fatal("retried call returned wrong bytes")
	}
	if err := <-parkedDone; err != nil {
		t.Fatalf("parked call failed: %v", err)
	}
	if n := h.reg.Counter("agile_server_requests_total",
		metrics.L("status", "resource_exhausted")).Value(); n < 2 {
		t.Fatalf("resource_exhausted counter = %d, want >= 2", n)
	}
}

// TestGracefulDrain proves Shutdown completes in-flight requests and
// refuses new ones.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	h := newHarness(t, 1, Options{MaxInflight: 4}, func(*wire.Request) { <-gate })
	in := []byte{1, 2, 3, 4}

	c, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A raw connection established before the drain starts, for probing
	// request handling on live connections mid-drain.
	raw, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	inflightDone := make(chan error, 1)
	var out []byte
	go func() {
		var err error
		out, _, err = c.Call(context.Background(), algos.CRC32().ID(), in)
		inflightDone <- err
	}()
	waitFor(t, func() bool {
		return h.reg.Gauge("agile_server_inflight").Value() == 1
	})

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- h.srv.Shutdown(ctx)
	}()

	// While draining: new connections are refused and new requests on
	// live connections answer UNAVAILABLE.
	waitFor(t, func() bool {
		_, err := net.DialTimeout("tcp", h.addr, 100*time.Millisecond)
		return err != nil
	})
	c2, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err == nil {
		c2.Close()
		t.Fatal("dial succeeded while draining")
	}
	if err := wire.WriteRequest(raw, &wire.Request{ID: 5, Fn: algos.CRC32().ID(), Payload: in}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || resp.Status != wire.StatusUnavailable {
		t.Fatalf("drain-time response = %+v, want UNAVAILABLE", resp)
	}

	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a request still in flight")
	default:
	}
	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-inflightDone; err != nil {
		t.Fatalf("in-flight call during drain: %v", err)
	}
	want, _ := algos.CRC32().Exec(in)
	if !bytes.Equal(out, want) {
		t.Fatal("drained call returned wrong bytes")
	}
	if err := <-h.serr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	h.serr <- ErrServerClosed // keep Cleanup's receive from blocking
}

func TestDeadlineExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("depends on wall-clock stalls and budgets; skipped in -short mode")
	}
	// The hook stalls request 77 past its budget after admission, so the
	// server-side deadline path triggers deterministically.
	h := newHarness(t, 1, Options{}, func(req *wire.Request) {
		if req.ID == 77 {
			time.Sleep(50 * time.Millisecond)
		}
	})
	c, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // guarantee expiry
	_, _, err = c.Call(ctx, algos.CRC32().ID(), []byte{1, 2, 3, 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	// Server-side enforcement: a raw request whose budget cannot be met
	// answers DEADLINE_EXCEEDED rather than hanging.
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &wire.Request{ID: 77, Fn: algos.CRC32().ID(), Deadline: 10 * time.Millisecond, Payload: []byte{1, 2, 3, 4}}
	if err := wire.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 || resp.Status != wire.StatusDeadlineExceeded {
		t.Fatalf("raw deadline response = %+v, want DEADLINE_EXCEEDED", resp)
	}
}

func TestUnknownFunctionAndEmptyPayload(t *testing.T) {
	h := newHarness(t, 1, Options{}, nil)
	c, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Call(context.Background(), 0xFFFF, []byte{1})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusNotFound {
		t.Fatalf("unknown fn err = %v, want NOT_FOUND", err)
	}
	_, _, err = c.Call(context.Background(), algos.CRC32().ID(), nil)
	if !errors.As(err, &se) || se.Status != wire.StatusInvalidArgument {
		t.Fatalf("empty payload err = %v, want INVALID_ARGUMENT", err)
	}
}

// TestBadFrameClosesConnection: a stream that breaks framing is
// dropped, and the decode-error counter records it.
func TestBadFrameClosesConnection(t *testing.T) {
	h := newHarness(t, 1, Options{}, nil)
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(bytes.Repeat([]byte{0xFF}, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a poisoned connection open")
	}
	waitFor(t, func() bool {
		return h.reg.Counter("agile_server_decode_errors_total").Value() >= 1
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never reached")
}
