package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/client"
	"agilefpga/internal/metrics"
	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// findSpan returns the first span named name in tr, or nil.
func findSpan(tr *trace.Trace, name string) *trace.Span {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// waitCompleted polls until the tracer has filed n traces.
func waitCompleted(t *testing.T, tr *trace.Tracer, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:wallclock test timeout
	for tr.Completed() < n {
		if time.Now().After(deadline) { //lint:wallclock test timeout
			t.Fatalf("tracer filed %d traces, want %d", tr.Completed(), n)
		}
		time.Sleep(time.Millisecond) //lint:wallclock test poll
	}
}

// TestEndToEndTrace is the tentpole acceptance test: one client.Call
// against a live server yields a single trace whose span tree walks
// the whole request path — client call and attempt, server rpc
// (joined over the wire trace context), cluster queue-wait and
// service spans that tile exactly, and virtual per-phase card spans
// under the service span.
func TestEndToEndTrace(t *testing.T) {
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 42})
	defer tracer.Close()
	h := newHarness(t, 1, Options{Tracer: tracer}, nil)
	c, err := client.Dial(h.addr, client.Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := algos.CRC32()
	if _, _, err := c.Call(context.Background(), f.ID(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, tracer, 1)
	captured := tracer.Captured()
	if len(captured) != 1 {
		t.Fatalf("captured %d traces, want 1", len(captured))
	}
	tr := captured[0]
	if tr.Err {
		t.Fatalf("trace marked errored: %+v", tr)
	}

	call := findSpan(tr, "call")
	attempt := findSpan(tr, "attempt")
	rpc := findSpan(tr, "rpc")
	queue := findSpan(tr, "queue-wait")
	service := findSpan(tr, "service")
	for name, sp := range map[string]*trace.Span{
		"call": call, "attempt": attempt, "rpc": rpc,
		"queue-wait": queue, "service": service,
	} {
		if sp == nil {
			t.Fatalf("trace is missing the %q span; got %+v", name, tr.Spans)
		}
	}

	// Parentage: call → attempt → rpc → {queue-wait, service}.
	if attempt.Parent != call.SpanID {
		t.Errorf("attempt parent %#x, want call %#x", attempt.Parent, call.SpanID)
	}
	if rpc.Parent != attempt.SpanID {
		t.Errorf("rpc parent %#x, want attempt %#x", rpc.Parent, attempt.SpanID)
	}
	if queue.Parent != rpc.SpanID || service.Parent != rpc.SpanID {
		t.Errorf("queue/service parents %#x/%#x, want rpc %#x", queue.Parent, service.Parent, rpc.SpanID)
	}

	// Layers walk the stack.
	if call.Layer != "client" || rpc.Layer != "server" || queue.Layer != "cluster" || service.Layer != "cluster" {
		t.Errorf("wrong layers: call=%s rpc=%s queue=%s service=%s", call.Layer, rpc.Layer, queue.Layer, service.Layer)
	}

	// Queue wait and service time tile: the queue span ends exactly
	// where the service span starts, so their durations sum to the
	// dispatcher-observed latency.
	if queue.StartNS+queue.DurNS != service.StartNS {
		t.Errorf("queue span [%d +%d] does not abut service start %d", queue.StartNS, queue.DurNS, service.StartNS)
	}

	// Virtual card-phase spans hang off the service span; a cold CRC32
	// call must at least execute and configure.
	phases := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Layer == "card" {
			if sp.Parent != service.SpanID {
				t.Errorf("card phase %q parent %#x, want service %#x", sp.Name, sp.Parent, service.SpanID)
			}
			if sp.VirtPS == 0 {
				t.Errorf("card phase %q has zero virtual duration", sp.Name)
			}
			phases[sp.Name] = true
		}
	}
	for _, want := range []string{"exec", "configure"} {
		if !phases[want] {
			t.Errorf("trace has no %q card phase span (got %v)", want, phases)
		}
	}
}

// TestServerRootsTraceForUntracedClient proves v1 interop: a client
// that ships no wire trace context still gets a server-side trace
// rooted at admission, and the wire exchange succeeds unchanged.
func TestServerRootsTraceForUntracedClient(t *testing.T) {
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 7})
	defer tracer.Close()
	h := newHarness(t, 1, Options{Tracer: tracer}, nil)
	c, err := client.Dial(h.addr, client.Options{}) // no client tracer
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := algos.CRC32()
	if _, _, err := c.Call(context.Background(), f.ID(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, tracer, 1)
	captured := tracer.Captured()
	if len(captured) != 1 {
		t.Fatalf("captured %d traces, want 1", len(captured))
	}
	tr := captured[0]
	rpc := findSpan(tr, "rpc")
	if rpc == nil || rpc.Parent != 0 {
		t.Fatalf("server-rooted trace must have a parentless rpc span, got %+v", tr.Spans)
	}
	if findSpan(tr, "call") != nil {
		t.Fatal("untraced client cannot contribute spans")
	}
}

// TestBatchWindowSpan proves cross-client batching is visible in each
// member's trace: two concurrent same-function calls through a
// BatchWindow=2 server each carry a batch-window span noting the
// window size.
func TestBatchWindowSpan(t *testing.T) {
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 9})
	defer tracer.Close()
	h := newHarness(t, 1, Options{BatchWindow: 2, BatchDwell: 500 * time.Millisecond, Tracer: tracer}, nil)
	c, err := client.Dial(h.addr, client.Options{Tracer: tracer, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := algos.CRC32()
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(b byte) {
			_, _, err := c.Call(context.Background(), f.ID(), []byte{b, b, b, b})
			errc <- err
		}(byte(i + 1))
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	waitCompleted(t, tracer, 2)
	captured := tracer.Captured()
	if len(captured) != 2 {
		t.Fatalf("captured %d traces, want 2", len(captured))
	}
	for _, tr := range captured {
		win := findSpan(tr, "batch-window")
		if win == nil {
			t.Fatalf("trace %#x has no batch-window span", tr.TraceID)
		}
		if !strings.Contains(win.Note, "size=2") {
			t.Errorf("batch-window note %q does not record size=2", win.Note)
		}
		rpc := findSpan(tr, "rpc")
		if rpc == nil || win.Parent != rpc.SpanID {
			t.Errorf("batch-window span must hang off the rpc span")
		}
	}
}

// TestLatencyExemplarCarriesTraceID proves the metrics link: a sampled
// request stamps its trace id onto the server latency histogram as an
// exemplar, and the Prometheus exposition renders it.
func TestLatencyExemplarCarriesTraceID(t *testing.T) {
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 3})
	defer tracer.Close()
	h := newHarness(t, 1, Options{Tracer: tracer}, nil)
	c, err := client.Dial(h.addr, client.Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := algos.CRC32()
	if _, _, err := c.Call(context.Background(), f.ID(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, tracer, 1)
	hist := h.reg.Histogram("agile_server_request_seconds", metrics.L("status", "ok"))
	id, _ := hist.Exemplar()
	if id == 0 {
		t.Fatal("latency histogram has no exemplar trace id")
	}
	if id != tracer.Captured()[0].TraceID {
		t.Fatalf("exemplar trace id %#x != captured trace %#x", id, tracer.Captured()[0].TraceID)
	}
	var b strings.Builder
	if _, err := h.reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# {trace_id="`) {
		t.Fatal("Prometheus exposition has no exemplar annotation")
	}
}

// TestDebugRequestsTable proves the live request surface: a request
// held at admission appears in /debug/requests with its function,
// connection and trace id, and disappears once served.
func TestDebugRequestsTable(t *testing.T) {
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 5})
	defer tracer.Close()
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	h := newHarness(t, 1, Options{Tracer: tracer}, func(*wire.Request) {
		entered <- struct{}{}
		<-hold
	})
	c, err := client.Dial(h.addr, client.Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := algos.CRC32()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Call(context.Background(), f.ID(), []byte{1, 2, 3, 4})
		done <- err
	}()
	<-entered
	rr := httptest.NewRecorder()
	h.srv.DebugRequestsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	var body struct {
		Inflight int               `json:"inflight"`
		Requests []InflightRequest `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Requests) != 1 {
		t.Fatalf("in-flight table has %d rows, want 1: %s", len(body.Requests), rr.Body.String())
	}
	row := body.Requests[0]
	if row.Fn != f.ID() || row.Conn == "" || row.TraceID == "" {
		t.Fatalf("incomplete in-flight row: %+v", row)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	h.srv.DebugRequestsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Requests) != 0 {
		t.Fatalf("served request still in table: %s", rr.Body.String())
	}
}

// TestTracingNoVirtualTime extends the PR 2 passivity proof to the
// tracing layer: serving the same request sequence with 100% sampling
// and with tracing disabled produces byte-identical virtual-time
// statistics — observation never advances any clock domain.
func TestTracingNoVirtualTime(t *testing.T) {
	run := func(tracer *trace.Tracer) (requests, hits uint64, phases string) {
		h := newHarness(t, 1, Options{Tracer: tracer}, nil)
		c, err := client.Dial(h.addr, client.Options{Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 8; i++ {
			f := algos.CRC32()
			if i%2 == 1 {
				f = algos.MD5()
			}
			if _, _, err := c.Call(context.Background(), f.ID(), []byte{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
		}
		st := h.cl.Stats()
		return st.Total.Requests, st.Total.Hits, st.Total.Phases.String()
	}
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 11})
	defer tracer.Close()
	tReq, tHits, tPhases := run(tracer)
	uReq, uHits, uPhases := run(nil)
	if tReq != uReq || tHits != uHits || tPhases != uPhases {
		t.Fatalf("tracing changed virtual statistics:\ntraced:   req=%d hits=%d %s\nuntraced: req=%d hits=%d %s",
			tReq, tHits, tPhases, uReq, uHits, uPhases)
	}
}
