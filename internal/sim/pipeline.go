package sim

import "fmt"

// Pipeline computes the critical-path latency of an in-order hardware
// pipeline fed one item at a time. Each stage has a per-item cost that
// the caller supplies already converted to virtual time (so every stage
// may live on its own clock domain), and the classic recurrence
//
//	finish[i][s] = max(finish[i-1][s], finish[i][s-1]) + cost[i][s]
//
// yields the finish time of item i at stage s. The pipeline tracks only
// the previous item's finish times, so feeding n items costs O(n·stages)
// time and O(stages) space.
//
// Attribution keeps Breakdown sums exact: the first item's cost at each
// non-final stage is the unavoidable pipeline fill and is charged to that
// stage's phase; the final stage's total busy time is charged to its
// phase (it is the drain that every item must pass through); whatever
// remains of the critical-path latency is bubble time and is charged to
// PhasePipeStall. The residual is provably non-negative because the
// critical path includes at least the fill of every earlier stage by the
// first item plus the busy time of the final stage.
type Pipeline struct {
	phases []Phase
	finish []Time // previous item's finish time per stage
	first  []Time // first item's cost per stage (pipeline fill)
	busy   []Time // total busy time per stage
	sum    Time   // sum of every cost fed (sequential-equivalent time)
	items  int
	ends   [pipeRing]Time // ring buffer of recent item completion times
	peak   int            // peak number of items simultaneously in flight
}

// pipeRing bounds how far back Feed looks when counting items in flight.
// The recurrence lets a fast upstream stage run ahead of a slow drain, so
// more items than stages can be started-but-unfinished; 64 is far beyond
// any plausible run-ahead for the 2–3 stage pipelines modelled here.
const pipeRing = 64

// NewPipeline returns a pipeline whose stages charge the given phases,
// in order. It panics if no stages are given.
func NewPipeline(phases ...Phase) *Pipeline {
	if len(phases) == 0 {
		panic("sim: pipeline needs at least one stage")
	}
	return &Pipeline{
		phases: phases,
		finish: make([]Time, len(phases)),
		first:  make([]Time, len(phases)),
		busy:   make([]Time, len(phases)),
	}
}

// Feed pushes one item through the pipeline, one cost per stage. It
// panics if the number of costs does not match the number of stages.
func (p *Pipeline) Feed(costs ...Time) {
	if len(costs) != len(p.phases) {
		panic(fmt.Sprintf("sim: pipeline has %d stages, got %d costs", len(p.phases), len(costs)))
	}
	start := p.finish[0] // item enters when stage 0 frees up
	var prev Time
	for s, c := range costs {
		t := prev
		if p.finish[s] > t {
			t = p.finish[s]
		}
		prev = t + c
		p.finish[s] = prev
		p.busy[s] += c
		p.sum += c
		if p.items == 0 {
			p.first[s] = c
		}
	}
	// Items still in flight when this one entered: earlier items whose
	// completion lies after this item's start. Finish times are monotone
	// per stage, so only the most recent pipeRing items can still overlap.
	inFlight := 1
	for i := 0; i < p.items && i < pipeRing; i++ {
		if p.ends[(p.items-1-i)%pipeRing] > start {
			inFlight++
		}
	}
	if inFlight > p.peak {
		p.peak = inFlight
	}
	p.ends[p.items%pipeRing] = prev
	p.items++
}

// Items reports how many items have been fed.
func (p *Pipeline) Items() int { return p.items }

// Latency reports the critical-path time: the finish time of the last
// item at the last stage, i.e. the virtual time the whole load takes.
func (p *Pipeline) Latency() Time { return p.finish[len(p.finish)-1] }

// Saved reports how much virtual time the overlap hides relative to
// running every cost back to back (the sequential model).
func (p *Pipeline) Saved() Time { return p.sum - p.Latency() }

// PeakInFlight reports the maximum number of items that were started but
// not yet drained at any instant. It can exceed the stage count when a
// fast upstream stage runs ahead of a slow drain.
func (p *Pipeline) PeakInFlight() int { return p.peak }

// Attribute charges the critical-path latency to br, split across the
// stage phases plus PhasePipeStall, and returns the stall time. The
// charges sum exactly to Latency.
func (p *Pipeline) Attribute(br *Breakdown) Time {
	last := len(p.phases) - 1
	var charged Time
	for s := 0; s < last; s++ {
		br.Add(p.phases[s], p.first[s])
		charged += p.first[s]
	}
	br.Add(p.phases[last], p.busy[last])
	charged += p.busy[last]
	stall := p.Latency() - charged
	br.Add(PhasePipeStall, stall)
	return stall
}
