package sim

import (
	"testing"
	"testing/quick"
)

func TestPipelineSingleStageIsSequential(t *testing.T) {
	p := NewPipeline(PhaseConfigure)
	var want Time
	for _, c := range []Time{5, 0, 12, 3} {
		p.Feed(c)
		want += c
	}
	if p.Latency() != want {
		t.Errorf("Latency = %v, want %v", p.Latency(), want)
	}
	if p.Saved() != 0 {
		t.Errorf("single stage saved %v, want 0", p.Saved())
	}
	var br Breakdown
	if stall := p.Attribute(&br); stall != 0 {
		t.Errorf("stall = %v, want 0", stall)
	}
	if br.Get(PhaseConfigure) != want {
		t.Errorf("configure = %v, want %v", br.Get(PhaseConfigure), want)
	}
}

func TestPipelineKnownSchedule(t *testing.T) {
	// Two stages, costs (3,1), (3,1), (3,1): stage 0 is the bottleneck.
	// finish[i][0] = 3(i+1); finish[i][1] = 3(i+1)+1 → latency 10.
	p := NewPipeline(PhaseROM, PhaseConfigure)
	for i := 0; i < 3; i++ {
		p.Feed(3, 1)
	}
	if p.Latency() != 10 {
		t.Fatalf("Latency = %v, want 10", p.Latency())
	}
	if p.Saved() != 2 {
		t.Errorf("Saved = %v, want 2", p.Saved())
	}
	var br Breakdown
	stall := p.Attribute(&br)
	// First ROM cost (3) + total port busy (3) + stall (4) = 10.
	if br.Get(PhaseROM) != 3 || br.Get(PhaseConfigure) != 3 || stall != 4 {
		t.Errorf("attribution rom=%v cfg=%v stall=%v", br.Get(PhaseROM), br.Get(PhaseConfigure), stall)
	}
	if br.Total() != p.Latency() {
		t.Errorf("attribution total %v != latency %v", br.Total(), p.Latency())
	}
}

func TestPipelineDrainBound(t *testing.T) {
	// Final stage dominates: latency = fill + total drain busy, no stall.
	p := NewPipeline(PhaseROM, PhaseDecompress, PhaseConfigure)
	for i := 0; i < 5; i++ {
		p.Feed(1, 1, 10)
	}
	if want := Time(1 + 1 + 50); p.Latency() != want {
		t.Fatalf("Latency = %v, want %v", p.Latency(), want)
	}
	var br Breakdown
	if stall := p.Attribute(&br); stall != 0 {
		t.Errorf("stall = %v, want 0 when drain-bound", stall)
	}
	if p.PeakInFlight() < 2 {
		t.Errorf("PeakInFlight = %d, want >= 2", p.PeakInFlight())
	}
}

// TestPipelineInvariants checks, for arbitrary 3-stage cost matrices:
// latency never exceeds the sequential sum, never undercuts any single
// stage's busy time, and attribution sums exactly to latency.
func TestPipelineInvariants(t *testing.T) {
	f := func(costs [][3]uint16) bool {
		if len(costs) == 0 {
			return true
		}
		p := NewPipeline(PhaseROM, PhaseDecompress, PhaseConfigure)
		var sum Time
		var busy [3]Time
		for _, row := range costs {
			p.Feed(Time(row[0]), Time(row[1]), Time(row[2]))
			for s, c := range row {
				sum += Time(c)
				busy[s] += Time(c)
			}
		}
		if p.Latency() > sum {
			return false
		}
		for _, b := range busy {
			if p.Latency() < b {
				return false
			}
		}
		if p.Saved() != sum-p.Latency() {
			return false
		}
		var br Breakdown
		p.Attribute(&br)
		return br.Total() == p.Latency()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipelineFeedArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Feed with wrong arity did not panic")
		}
	}()
	NewPipeline(PhaseROM, PhaseConfigure).Feed(1)
}
