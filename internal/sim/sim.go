// Package sim provides the timing substrate for the co-processor
// simulation: clock domains with cycle accounting, a picosecond-resolution
// virtual time type, per-phase latency breakdowns, and a deterministic
// pseudo-random number generator.
//
// All components of the simulated co-processor express their costs in
// cycles of their own clock domain (PCI bus, configuration port, fabric,
// host CPU). Cycle counts convert to virtual time through the domain
// frequency, so experiments are fully deterministic and independent of
// wall-clock behaviour of the Go runtime.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual time with picosecond resolution. Picoseconds keep the
// conversion from cycles exact for every clock frequency that divides
// 1 THz, which covers all domains used in this repository.
type Time uint64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts virtual time to a time.Duration, rounding down to
// nanosecond resolution.
func (t Time) Duration() time.Duration {
	return time.Duration(t/Nanosecond) * time.Nanosecond
}

// Nanoseconds reports t in nanoseconds, rounded down.
func (t Time) Nanoseconds() uint64 { return uint64(t / Nanosecond) }

// Microseconds reports t in microseconds as a float for table output.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// Domain is a clock domain: a name, a frequency, and an accumulated cycle
// counter. The zero value is unusable; construct domains with NewDomain.
type Domain struct {
	name       string
	hz         uint64
	psPerCycle uint64
	cycles     uint64
}

// NewDomain returns a clock domain running at hz hertz. The cycle period
// is rounded to the nearest picosecond (exact for every frequency that
// divides 1 THz; off by at most 0.5 ps otherwise, e.g. for 33 MHz PCI).
// NewDomain panics if hz is zero or above 1 THz.
func NewDomain(name string, hz uint64) *Domain {
	const thz = 1_000_000_000_000
	if hz == 0 || hz > thz {
		panic(fmt.Sprintf("sim: invalid frequency %d Hz for clock domain %q", hz, name))
	}
	return &Domain{name: name, hz: hz, psPerCycle: (thz + hz/2) / hz}
}

// Name reports the domain name.
func (d *Domain) Name() string { return d.name }

// Hz reports the domain frequency.
func (d *Domain) Hz() uint64 { return d.hz }

// Advance adds c cycles to the domain counter and returns the virtual time
// those cycles took.
func (d *Domain) Advance(c uint64) Time {
	d.cycles += c
	return d.Span(c)
}

// Span converts a cycle count to virtual time without advancing the clock.
func (d *Domain) Span(c uint64) Time { return Time(c * d.psPerCycle) }

// CyclesFor reports how many whole cycles of this domain cover t,
// rounding up.
func (d *Domain) CyclesFor(t Time) uint64 {
	return (uint64(t) + d.psPerCycle - 1) / d.psPerCycle
}

// Cycles reports the accumulated cycle count.
func (d *Domain) Cycles() uint64 { return d.cycles }

// Elapsed reports the accumulated virtual time of the domain.
func (d *Domain) Elapsed() Time { return Time(d.cycles * d.psPerCycle) }

// Reset zeroes the accumulated cycle counter.
func (d *Domain) Reset() { d.cycles = 0 }

// Phase identifies one stage of the request path for latency accounting.
type Phase int

// Phases of a co-processor request, in pipeline order.
const (
	PhasePCI        Phase = iota // host↔board transfers over the PCI bus
	PhaseROM                     // reading the compressed bitstream out of ROM
	PhaseDecompress              // configuration-module window decompression
	PhaseConfigure               // configuration-port frame writes
	PhaseDataIn                  // data-input module RAM→fabric streaming
	PhaseExec                    // function execution on the fabric
	PhaseDataOut                 // output-collection module fabric→RAM streaming
	PhaseOverhead                // mini-OS bookkeeping (placement, tables)
	PhaseCache                   // decoded-frame cache reads (RAM, not ROM+decode)
	PhasePipeStall               // bubbles in the pipelined configuration path
	// PhasePrefetch and PhaseScrub never appear in a request Breakdown —
	// their cost is off-request by design (Stats.PrefetchTime,
	// Stats.ScrubTime). They exist so the telemetry layer can label
	// latency histograms for that off-request work with the same Phase
	// vocabulary the request path uses.
	PhasePrefetch // speculative configuration loads during host idle time
	PhaseScrub    // SEU readback-and-repair passes
	numPhases
)

var phaseNames = [numPhases]string{
	"pci", "rom", "decompress", "configure", "datain", "exec", "dataout", "overhead", "cache",
	"pipestall", "prefetch", "scrub",
}

// String returns the lower-case phase name.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// NumPhases is the number of distinct accounting phases.
const NumPhases = int(numPhases)

// Breakdown accumulates virtual time per phase. The zero value is an empty
// breakdown ready to use.
type Breakdown struct {
	spans [numPhases]Time
}

// Add charges t to phase p. Out-of-range phases are charged to overhead.
func (b *Breakdown) Add(p Phase, t Time) {
	if p < 0 || p >= numPhases {
		p = PhaseOverhead
	}
	b.spans[p] += t
}

// Get reports the time charged to phase p.
func (b Breakdown) Get(p Phase) Time {
	if p < 0 || p >= numPhases {
		return 0
	}
	return b.spans[p]
}

// Total reports the sum over all phases.
func (b Breakdown) Total() Time {
	var t Time
	for _, s := range b.spans {
		t += s
	}
	return t
}

// AddAll accumulates another breakdown into b.
func (b *Breakdown) AddAll(o Breakdown) {
	for i := range b.spans {
		b.spans[i] += o.spans[i]
	}
}

// String renders the non-zero phases as "phase=duration" pairs.
func (b Breakdown) String() string {
	s := ""
	for i, v := range b.spans {
		if v == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", Phase(i), v)
	}
	if s == "" {
		return "empty"
	}
	return s
}

// RNG is a deterministic SplitMix64 pseudo-random generator. It is not
// cryptographic; it exists so that workloads, placement jitter, and the
// Random replacement policy reproduce exactly across runs and platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
