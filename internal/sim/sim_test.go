package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", uint64(Second))
	}
	if got := (3 * Millisecond).Duration(); got != 3*time.Millisecond {
		t.Errorf("Duration = %v, want 3ms", got)
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Errorf("Microseconds = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{1500 * Nanosecond, "1.500µs"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d ps: got %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestDomainConversion(t *testing.T) {
	// 33 MHz does not divide 1 THz; the period must round to 30303 ps.
	d := NewDomain("pci", 33_000_000)
	if got := d.Span(1); got != 30303*Picosecond {
		t.Errorf("33 MHz period = %d ps, want 30303", uint64(got))
	}
}

func TestDomainAdvance(t *testing.T) {
	d := NewDomain("cfg", 50_000_000) // 20 ns per cycle
	got := d.Advance(5)
	if got != 100*Nanosecond {
		t.Errorf("Advance(5) = %v, want 100ns", got)
	}
	if d.Cycles() != 5 {
		t.Errorf("Cycles = %d, want 5", d.Cycles())
	}
	if d.Elapsed() != 100*Nanosecond {
		t.Errorf("Elapsed = %v", d.Elapsed())
	}
	d.Reset()
	if d.Cycles() != 0 {
		t.Errorf("Reset did not clear cycles")
	}
}

func TestDomainCyclesFor(t *testing.T) {
	d := NewDomain("fab", 100_000_000) // 10 ns per cycle
	if got := d.CyclesFor(25 * Nanosecond); got != 3 {
		t.Errorf("CyclesFor(25ns) = %d, want 3 (round up)", got)
	}
	if got := d.CyclesFor(30 * Nanosecond); got != 3 {
		t.Errorf("CyclesFor(30ns) = %d, want 3 (exact)", got)
	}
	if got := d.CyclesFor(0); got != 0 {
		t.Errorf("CyclesFor(0) = %d, want 0", got)
	}
}

func TestDomainPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero hz", func() { NewDomain("x", 0) })
	mustPanic("above 1 THz", func() { NewDomain("x", 2_000_000_000_000) })
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(PhasePCI, 10*Nanosecond)
	b.Add(PhaseExec, 30*Nanosecond)
	b.Add(PhasePCI, 5*Nanosecond)
	if got := b.Get(PhasePCI); got != 15*Nanosecond {
		t.Errorf("Get(PCI) = %v", got)
	}
	if got := b.Total(); got != 45*Nanosecond {
		t.Errorf("Total = %v", got)
	}
	var c Breakdown
	c.Add(PhaseExec, 1*Nanosecond)
	c.AddAll(b)
	if got := c.Get(PhaseExec); got != 31*Nanosecond {
		t.Errorf("AddAll Exec = %v", got)
	}
	// Out-of-range phases fold into overhead rather than corrupting memory.
	b.Add(Phase(99), 1*Nanosecond)
	if got := b.Get(PhaseOverhead); got != 1*Nanosecond {
		t.Errorf("out-of-range Add: overhead = %v", got)
	}
	if b.Get(Phase(-1)) != 0 {
		t.Errorf("Get(-1) should be 0")
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	if b.String() != "empty" {
		t.Errorf("empty breakdown: %q", b.String())
	}
	b.Add(PhaseExec, 2*Nanosecond)
	if b.String() != "exec=2.000ns" {
		t.Errorf("String = %q", b.String())
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseDecompress.String() != "decompress" {
		t.Errorf("PhaseDecompress = %q", PhaseDecompress.String())
	}
	if Phase(99).String() != "phase(99)" {
		t.Errorf("unknown phase = %q", Phase(99).String())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds too correlated: %d/100 equal", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpanMatchesAdvance(t *testing.T) {
	d := NewDomain("x", 200_000_000)
	if d.Span(7) != 35*Nanosecond {
		t.Errorf("Span(7) = %v", d.Span(7))
	}
	if d.Cycles() != 0 {
		t.Errorf("Span must not advance the clock")
	}
}
