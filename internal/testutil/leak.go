// Package testutil holds helpers shared by the concurrency-heavy test
// suites. Its centrepiece is a goroutine-leak check in the spirit of
// go.uber.org/goleak, built on runtime.Stack so it needs no
// dependencies: packages whose tests spawn workers (internal/server,
// internal/cluster) run it from TestMain so a handler or worker that
// outlives its test fails the whole package.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// benignMarkers identify goroutines that legitimately outlive a test:
// the harness itself, runtime service goroutines, and profiling
// machinery. A stack containing any marker is never reported.
var benignMarkers = []string{
	"testing.Main(",
	"testing.(*T).Run(",
	"testing.(*M).before",
	"testing.runTests",
	"testing.runFuzzing",
	"testing.(*F).Fuzz(",
	"runtime/pprof.",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"runtime.ensureSigM",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
}

// CheckGoroutineLeaks reports an error if, after a short grace period
// for in-flight shutdowns to settle, any goroutine outside the test
// harness and the runtime is still alive. Call it from TestMain after
// m.Run:
//
//	func TestMain(m *testing.M) {
//		code := m.Run()
//		if code == 0 {
//			if err := testutil.CheckGoroutineLeaks(); err != nil {
//				fmt.Fprintln(os.Stderr, err)
//				code = 1
//			}
//		}
//		os.Exit(code)
//	}
func CheckGoroutineLeaks() error {
	//lint:wallclock the leak grace period is real time: goroutines wind down on the wall clock
	deadline := time.Now().Add(2 * time.Second)
	var leaked []string
	for {
		leaked = leakedGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) { //lint:wallclock see above
			break
		}
		time.Sleep(10 * time.Millisecond) //lint:wallclock see above
	}
	return fmt.Errorf("testutil: %d leaked goroutine(s) after tests:\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}

// leakedGoroutines snapshots every live goroutine's stack and returns
// the suspicious ones.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for i, stack := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine running this check
		}
		if stack == "" || isBenign(stack) {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

func isBenign(stack string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	// A goroutine parked in the runtime with no user frames (e.g. a
	// finalizer waiter) prints only runtime functions.
	for _, line := range strings.Split(stack, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if strings.HasPrefix(line, "created by ") {
			line = strings.TrimPrefix(line, "created by ")
		}
		if strings.HasPrefix(line, "runtime.") || strings.HasPrefix(line, "/") {
			continue
		}
		return false // found a non-runtime user frame
	}
	return true
}
