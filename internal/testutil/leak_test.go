package testutil

import (
	"strings"
	"testing"
)

func TestNoLeaksOnQuiescentProcess(t *testing.T) {
	if err := CheckGoroutineLeaks(); err != nil {
		t.Fatalf("quiescent process reported leaks: %v", err)
	}
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	leaked := leakedGoroutines()
	found := false
	for _, s := range leaked {
		if strings.Contains(s, "TestDetectsLeakedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatalf("blocked goroutine not reported; got %d stacks", len(leaked))
	}
	close(release)
	if err := CheckGoroutineLeaks(); err != nil {
		t.Fatalf("leak still reported after release: %v", err)
	}
}
