package trace

import (
	"encoding/json"
	"io"
	"strconv"

	"agilefpga/internal/sim"
)

// Chrome trace-event export: the JSON format chrome://tracing, Catapult
// and Perfetto all load. A session renders as a timeline of cards ×
// phases — each card becomes a process row, each pipeline phase a
// thread row carrying its span events, and the point events (request,
// hit, miss, evict, ...) land on a dedicated "events" row as instants.
// Timestamps are virtual card time, exported in microseconds (the
// format's native unit).

// chromeEvent is one trace-event entry. Ph "X" = complete span, "i" =
// instant, "M" = metadata (process/thread naming).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// instantTID is the thread row point events land on; span threads use
// 1 + phase index so rows sort in pipeline order under each card.
const instantTID = 0

// psToUS converts picoseconds to trace-event microseconds.
func psToUS(ps uint64) float64 { return float64(ps) / 1e6 }

// spanTID maps a span event's phase name to its thread row.
func spanTID(phase string) int {
	for p := 0; p < sim.NumPhases; p++ {
		if sim.Phase(p).String() == phase {
			return 1 + p
		}
	}
	return 1 + sim.NumPhases // unknown phase names share a trailing row
}

// WriteChromeTrace renders events as Chrome trace-event JSON. Output is
// deterministic for a given event slice: metadata rows are emitted in
// order of first appearance, then every event in log order.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out chromeFile
	out.DisplayTimeUnit = "ns"
	out.TraceEvents = []chromeEvent{}

	type row struct{ pid, tid int }
	named := make(map[row]bool)
	nameRow := func(pid, tid int, name string) {
		if named[row{pid, tid}] {
			return
		}
		named[row{pid, tid}] = true
		if tid == instantTID {
			// First sight of the card: name the process too.
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]any{"name": cardName(pid)},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}

	for _, e := range events {
		pid := e.Card
		nameRow(pid, instantTID, "events")
		switch e.Kind {
		case KindSpan:
			tid := spanTID(e.Detail)
			nameRow(pid, tid, e.Detail)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Detail, Cat: "phase", Ph: "X",
				TS: psToUS(e.TimePS), Dur: psToUS(e.DurPS),
				PID: pid, TID: tid,
				Args: map[string]any{"fn": e.Fn},
			})
		default:
			ce := chromeEvent{
				Name: string(e.Kind), Cat: "event", Ph: "i",
				TS: psToUS(e.TimePS), PID: pid, TID: instantTID, S: "t",
				Args: map[string]any{"fn": e.Fn},
			}
			if e.Frames != 0 {
				ce.Args["frames"] = e.Frames
			}
			if e.Bytes != 0 {
				ce.Args["bytes"] = e.Bytes
			}
			if e.Detail != "" {
				ce.Args["detail"] = e.Detail
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// WriteChrome renders the whole log as Chrome trace-event JSON.
func (l *Log) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, l.Events())
}

// cardName labels a process row.
func cardName(card int) string {
	return "card " + strconv.Itoa(card)
}

// layerTID orders a request trace's lanes top to bottom in call order:
// client above server above cluster above card.
func layerTID(layer string) int {
	switch layer {
	case "client":
		return 0
	case "server", "host":
		return 1
	case "cluster":
		return 2
	case "card":
		return 3
	}
	return 4
}

// WriteChromeSpans renders completed request traces as Chrome
// trace-event JSON with request-centric lanes: each trace becomes a
// process row (named by its trace id), each layer a thread row, and
// every span a complete event at its wall-clock offset from the
// trace's start. Virtual card spans, which have no wall timestamps,
// are laid end to end from their parent's start with their virtual
// durations, so the per-phase attribution stays readable next to the
// wall-clock spans it explains. Output is deterministic for a given
// trace slice.
func WriteChromeSpans(w io.Writer, traces []*Trace) error {
	var out chromeFile
	out.DisplayTimeUnit = "ns"
	out.TraceEvents = []chromeEvent{}

	type row struct{ pid, tid int }
	named := make(map[row]bool)
	nameRow := func(pid, tid int, name string) {
		if named[row{pid, tid}] {
			return
		}
		named[row{pid, tid}] = true
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}

	for pid, tr := range traces {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": "trace " + traceIDString(tr.TraceID)},
		})
		// Virtual spans have no wall timestamps; they are laid end to
		// end from their parent's offset via a per-parent cursor.
		offsets := make(map[uint64]float64, len(tr.Spans))
		for _, sp := range tr.Spans {
			offsets[sp.SpanID] = float64(sp.StartNS-tr.StartNS) / 1e3
		}
		cursor := make(map[uint64]float64)
		for _, sp := range tr.Spans {
			tid := layerTID(sp.Layer)
			nameRow(pid, tid, sp.Layer)
			ce := chromeEvent{
				Name: sp.Name, Cat: sp.Layer, Ph: "X",
				PID: pid, TID: tid,
				Args: map[string]any{"span_id": traceIDString(sp.SpanID)},
			}
			if sp.Parent != 0 {
				ce.Args["parent_id"] = traceIDString(sp.Parent)
			}
			if sp.Fn != 0 {
				ce.Args["fn"] = sp.Fn
			}
			if sp.Card != 0 {
				ce.Args["card"] = sp.Card
			}
			if sp.Status != "" {
				ce.Args["status"] = sp.Status
			}
			if sp.Note != "" {
				ce.Args["note"] = sp.Note
			}
			if sp.Remote {
				ce.Args["remote"] = true
			}
			switch {
			case sp.VirtPS != 0 && sp.StartNS == 0:
				// Virtual span: place after its siblings under the parent.
				base, ok := cursor[sp.Parent]
				if !ok {
					base = offsets[sp.Parent]
				}
				ce.TS = base
				ce.Dur = psToUS(sp.VirtPS)
				cursor[sp.Parent] = base + ce.Dur
				ce.Args["virtual"] = true
			default:
				ce.TS = offsets[sp.SpanID]
				ce.Dur = float64(sp.DurNS) / 1e3
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// traceIDString formats ids the way trace UIs and log greps expect.
func traceIDString(id uint64) string {
	return "0x" + strconv.FormatUint(id, 16)
}
