package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// spanSession is a small deterministic captured-trace fixture: one
// traced request with the full layer stack (client call + attempt,
// server rpc, cluster queue/service split, virtual card phases) and a
// second, errored trace from a remote client.
func spanSession() []*Trace {
	return []*Trace{
		{
			TraceID: 0xABC, StartNS: 1_000_000_000, DurNS: 5_000,
			Spans: []Span{
				{SpanID: 1, Name: "call", Layer: "client", Fn: 3, StartNS: 1_000_000_000, DurNS: 5_000, Status: "ok"},
				{SpanID: 2, Parent: 1, Name: "attempt", Layer: "client", Fn: 3, StartNS: 1_000_000_500, DurNS: 4_000, Status: "ok"},
				{SpanID: 3, Parent: 2, Name: "rpc", Layer: "server", Fn: 3, StartNS: 1_000_001_000, DurNS: 3_000, Status: "ok"},
				{SpanID: 4, Parent: 3, Name: "queue-wait", Layer: "cluster", Fn: 3, Card: 1, StartNS: 1_000_001_200, DurNS: 800},
				{SpanID: 5, Parent: 3, Name: "service", Layer: "cluster", Fn: 3, Card: 1, StartNS: 1_000_002_000, DurNS: 1_500, Status: "ok"},
				{SpanID: 6, Parent: 5, Name: "configure", Layer: "card", Fn: 3, Card: 1, VirtPS: 2_000_000},
				{SpanID: 7, Parent: 5, Name: "exec", Layer: "card", Fn: 3, Card: 1, VirtPS: 500_000},
			},
		},
		{
			TraceID: 0xDEF, StartNS: 2_000_000_000, DurNS: 900, Err: true,
			Spans: []Span{
				{SpanID: 0x10, Name: "attempt", Layer: "client", Fn: 9, Remote: true, StartNS: 2_000_000_000},
				{SpanID: 0x11, Parent: 0x10, Name: "rpc", Layer: "server", Fn: 9, StartNS: 2_000_000_000, DurNS: 900,
					Status: "resource_exhausted", Note: "admission refused"},
			},
		},
	}
}

// spansGolden is the expected request-centric export of spanSession.
// The format is deterministic, so any diff is a real behaviour change;
// regenerate by pasting fresh output after an intentional one.
const spansGolden = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "trace 0xabc"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "client"
   }
  },
  {
   "name": "call",
   "cat": "client",
   "ph": "X",
   "ts": 0,
   "dur": 5,
   "pid": 0,
   "tid": 0,
   "args": {
    "fn": 3,
    "span_id": "0x1",
    "status": "ok"
   }
  },
  {
   "name": "attempt",
   "cat": "client",
   "ph": "X",
   "ts": 0.5,
   "dur": 4,
   "pid": 0,
   "tid": 0,
   "args": {
    "fn": 3,
    "parent_id": "0x1",
    "span_id": "0x2",
    "status": "ok"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 1,
   "args": {
    "name": "server"
   }
  },
  {
   "name": "rpc",
   "cat": "server",
   "ph": "X",
   "ts": 1,
   "dur": 3,
   "pid": 0,
   "tid": 1,
   "args": {
    "fn": 3,
    "parent_id": "0x2",
    "span_id": "0x3",
    "status": "ok"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 2,
   "args": {
    "name": "cluster"
   }
  },
  {
   "name": "queue-wait",
   "cat": "cluster",
   "ph": "X",
   "ts": 1.2,
   "dur": 0.8,
   "pid": 0,
   "tid": 2,
   "args": {
    "card": 1,
    "fn": 3,
    "parent_id": "0x3",
    "span_id": "0x4"
   }
  },
  {
   "name": "service",
   "cat": "cluster",
   "ph": "X",
   "ts": 2,
   "dur": 1.5,
   "pid": 0,
   "tid": 2,
   "args": {
    "card": 1,
    "fn": 3,
    "parent_id": "0x3",
    "span_id": "0x5",
    "status": "ok"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 3,
   "args": {
    "name": "card"
   }
  },
  {
   "name": "configure",
   "cat": "card",
   "ph": "X",
   "ts": 2,
   "dur": 2,
   "pid": 0,
   "tid": 3,
   "args": {
    "card": 1,
    "fn": 3,
    "parent_id": "0x5",
    "span_id": "0x6",
    "virtual": true
   }
  },
  {
   "name": "exec",
   "cat": "card",
   "ph": "X",
   "ts": 4,
   "dur": 0.5,
   "pid": 0,
   "tid": 3,
   "args": {
    "card": 1,
    "fn": 3,
    "parent_id": "0x5",
    "span_id": "0x7",
    "virtual": true
   }
  },
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "trace 0xdef"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "client"
   }
  },
  {
   "name": "attempt",
   "cat": "client",
   "ph": "X",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "fn": 9,
    "remote": true,
    "span_id": "0x10"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "server"
   }
  },
  {
   "name": "rpc",
   "cat": "server",
   "ph": "X",
   "ts": 0,
   "dur": 0.9,
   "pid": 1,
   "tid": 1,
   "args": {
    "fn": 9,
    "note": "admission refused",
    "parent_id": "0x10",
    "span_id": "0x11",
    "status": "resource_exhausted"
   }
  }
 ],
 "displayTimeUnit": "ns"
}
`

func TestChromeSpansGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spanSession()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != spansGolden {
		t.Errorf("request-centric chrome export drifted from golden.\ngot:\n%s", buf.String())
	}
}

// TestChromeSpansShape checks the structural invariants a trace UI
// depends on: every span lands on its layer's lane, virtual card spans
// tile end to end starting at their parent's offset, and wall offsets
// are relative to the trace's own start (each request starts at ~0).
func TestChromeSpansShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spanSession()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var virtTS []float64
	var firstWallTS = map[float64]float64{}
	for _, e := range parsed.TraceEvents {
		if e["ph"] != "X" {
			continue
		}
		args := e["args"].(map[string]any)
		if args["virtual"] == true {
			virtTS = append(virtTS, e["ts"].(float64))
			if e["tid"].(float64) != 3 {
				t.Errorf("virtual span off the card lane: %v", e)
			}
		}
		pid := e["pid"].(float64)
		if _, ok := firstWallTS[pid]; !ok {
			firstWallTS[pid] = e["ts"].(float64)
		}
	}
	if len(virtTS) != 2 || virtTS[0] != 2 || virtTS[1] != 4 {
		t.Errorf("virtual spans not tiled from the service offset: %v", virtTS)
	}
	for pid, ts := range firstWallTS {
		if ts != 0 {
			t.Errorf("trace %v does not start at offset 0 (ts=%v)", pid, ts)
		}
	}
}
