package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeSession is a small deterministic two-card session.
func chromeSession() []Event {
	return []Event{
		{Seq: 1, TimePS: 0, Kind: KindRequest, Fn: 3, Card: 0},
		{Seq: 2, TimePS: 0, Kind: KindMiss, Fn: 3, Card: 0},
		{Seq: 3, TimePS: 0, Kind: KindConfigure, Fn: 3, Frames: 4, Bytes: 2688, Detail: "framediff", Card: 0},
		{Seq: 4, TimePS: 0, Kind: KindSpan, Fn: 3, Detail: "configure", DurPS: 2_000_000, Card: 0},
		{Seq: 5, TimePS: 2_000_000, Kind: KindSpan, Fn: 3, Detail: "exec", DurPS: 500_000, Card: 0},
		{Seq: 6, TimePS: 1_000_000, Kind: KindRequest, Fn: 9, Card: 1},
		{Seq: 7, TimePS: 1_000_000, Kind: KindHit, Fn: 9, Card: 1},
		{Seq: 8, TimePS: 1_000_000, Kind: KindSpan, Fn: 9, Detail: "exec", DurPS: 250_000, Card: 1},
	}
}

// chromeGolden is the expected export of chromeSession. Regenerate by
// running the test with -update-chrome-golden logic removed and pasting
// the fresh output — the format is deterministic, so any diff is a real
// behaviour change.
const chromeGolden = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "card 0"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "events"
   }
  },
  {
   "name": "request",
   "cat": "event",
   "ph": "i",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "s": "t",
   "args": {
    "fn": 3
   }
  },
  {
   "name": "miss",
   "cat": "event",
   "ph": "i",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "s": "t",
   "args": {
    "fn": 3
   }
  },
  {
   "name": "configure",
   "cat": "event",
   "ph": "i",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "s": "t",
   "args": {
    "bytes": 2688,
    "detail": "framediff",
    "fn": 3,
    "frames": 4
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 4,
   "args": {
    "name": "configure"
   }
  },
  {
   "name": "configure",
   "cat": "phase",
   "ph": "X",
   "ts": 0,
   "dur": 2,
   "pid": 0,
   "tid": 4,
   "args": {
    "fn": 3
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 6,
   "args": {
    "name": "exec"
   }
  },
  {
   "name": "exec",
   "cat": "phase",
   "ph": "X",
   "ts": 2,
   "dur": 0.5,
   "pid": 0,
   "tid": 6,
   "args": {
    "fn": 3
   }
  },
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "card 1"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "events"
   }
  },
  {
   "name": "request",
   "cat": "event",
   "ph": "i",
   "ts": 1,
   "pid": 1,
   "tid": 0,
   "s": "t",
   "args": {
    "fn": 9
   }
  },
  {
   "name": "hit",
   "cat": "event",
   "ph": "i",
   "ts": 1,
   "pid": 1,
   "tid": 0,
   "s": "t",
   "args": {
    "fn": 9
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 6,
   "args": {
    "name": "exec"
   }
  },
  {
   "name": "exec",
   "cat": "phase",
   "ph": "X",
   "ts": 1,
   "dur": 0.25,
   "pid": 1,
   "tid": 6,
   "args": {
    "fn": 9
   }
  }
 ],
 "displayTimeUnit": "ns"
}
`

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, chromeSession()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != chromeGolden {
		t.Errorf("chrome export drifted from golden.\ngot:\n%s", buf.String())
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, chromeSession()); err != nil {
		t.Fatal(err)
	}
	// The output must be valid JSON that Catapult/Perfetto can load:
	// a traceEvents array where every entry has ph/pid/tid.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	spans, instants, meta := 0, 0, 0
	for _, e := range parsed.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"] == nil {
				t.Errorf("span without dur: %v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unknown ph in %v", e)
		}
		if _, ok := e["pid"]; !ok {
			t.Errorf("event without pid: %v", e)
		}
	}
	if spans != 3 || instants != 5 {
		t.Errorf("spans=%d instants=%d, want 3 and 5", spans, instants)
	}
	if meta == 0 {
		t.Error("no metadata rows — timelines would be unlabelled")
	}
}

func TestChromeTraceFromLog(t *testing.T) {
	l := &Log{}
	for _, e := range chromeSession() {
		l.Record(e)
	}
	var buf bytes.Buffer
	if err := l.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"displayTimeUnit": "ns"`) {
		t.Error("log export missing header")
	}
}
