package trace

import (
	"fmt"
	"os"
	"testing"

	"agilefpga/internal/testutil"
)

// TestMain fails the package if any tracer collector goroutine
// outlives its test: every NewTracer in the suite must be balanced by
// a Close that actually stops and drains the collector.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := testutil.CheckGoroutineLeaks(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
