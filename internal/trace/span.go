package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed request tracing. A Tracer assembles Spans into per-request
// Traces: the client opens a root span per Call (attempts as children),
// the context crosses the wire (internal/wire TraceContext), the server
// joins the trace on admission, and the cluster/card layers attach
// queue-wait, service and per-phase spans. Two clocks coexist: StartNS /
// DurNS are wall time (a request's real latency, which is what a trace
// is for), while VirtPS carries the simulator's virtual phase durations
// so a span tree still shows the paper's cost attribution. The tracer
// is strictly an observer — it records timestamps and never advances a
// sim.Domain (agilelint's passivemetrics analyzer machine-checks call
// sites, and TestTracingNoVirtualTime proves the property end to end).
//
// Sampling is two-sided: heads (a probabilistic decision when the root
// span opens; sampled-out requests carry no context and cost nothing on
// the wire) and tails (completed traces flow to a collector goroutine
// that always retains the slowest-N and every errored trace in ring
// buffers, plus a short recent ring). A nil *Tracer is a valid no-op,
// and every operation on the zero SpanRef is a no-op without
// allocating, which is what keeps the sampled-out request path at
// 0 allocs/op.

// SpanRef names one live span in one trace. The zero SpanRef means
// "not sampled": every Tracer method accepts it and does nothing.
type SpanRef struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the ref names a sampled trace.
func (r SpanRef) Valid() bool { return r.TraceID != 0 }

// Span is one timed operation within a trace. Wall-clock spans carry
// StartNS/DurNS (unix nanoseconds / nanoseconds); virtual spans — the
// card's per-phase records — carry VirtPS picoseconds instead and are
// laid end to end under their parent when rendered. Remote marks a
// placeholder for a span owned by the peer process (the client attempt
// a server only knows by id).
type Span struct {
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	Layer   string `json:"layer"` // client | server | cluster | card | host
	Fn      uint16 `json:"fn,omitempty"`
	Card    int    `json:"card,omitempty"`
	Remote  bool   `json:"remote,omitempty"`
	Note    string `json:"note,omitempty"`
	Status  string `json:"status,omitempty"` // "" or "ok" = success
	StartNS int64  `json:"start_ns,omitempty"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	VirtPS  uint64 `json:"virt_ps,omitempty"`
}

// Trace is one request's completed span tree.
type Trace struct {
	TraceID uint64 `json:"trace_id"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Err     bool   `json:"err,omitempty"`
	Spans   []Span `json:"spans"`
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Sample is the head-sampling probability in [0, 1]: the chance a
	// new root span is recorded. 0 disables tracing at the source; 1
	// records everything.
	Sample float64
	// TailN bounds the slowest-N ring: the traces with the largest
	// wall duration seen so far are always retained, regardless of how
	// few the head sampler kept. Default 16.
	TailN int
	// ErrorN bounds the errored-trace ring. Default 32.
	ErrorN int
	// RecentN bounds the most-recently-completed ring. Default 64.
	RecentN int
	// MaxActive bounds in-flight traces so a peer that never completes
	// spans cannot grow the tracer without bound; past it, new roots
	// are dropped (counted). Default 4096.
	MaxActive int
	// Seed fixes id generation and sampling decisions for tests; 0
	// seeds from the wall clock.
	Seed uint64
}

// Tracer creates spans, assembles them into traces, and hands completed
// traces to a collector goroutine that maintains the capture rings. A
// nil *Tracer records nothing.
type Tracer struct {
	opts      TracerOptions
	threshold uint64 // sample iff rand>>1 < threshold; ^0 = always
	rng       atomic.Uint64
	idCtr     atomic.Uint64
	idSeed    uint64

	mu     sync.Mutex
	active map[uint64]*activeTrace
	closed bool
	ch     chan *Trace
	done   chan struct{}

	ringsMu   sync.Mutex
	tail      []*Trace
	errs      []*Trace
	errsPos   int
	recent    []*Trace
	recentPos int

	completed     atomic.Uint64
	droppedFull   atomic.Uint64 // collector channel full
	droppedActive atomic.Uint64 // MaxActive reached
}

// activeTrace is a trace still being assembled. completer is the span
// whose End finalizes the trace: the root span locally, or the first
// joined span when the root lives in a remote process.
type activeTrace struct {
	tr        *Trace
	completer uint64
}

// NewTracer starts a tracer and its collector goroutine; Close stops
// it and drains pending completions into the rings.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.TailN <= 0 {
		opts.TailN = 16
	}
	if opts.ErrorN <= 0 {
		opts.ErrorN = 32
	}
	if opts.RecentN <= 0 {
		opts.RecentN = 64
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = 4096
	}
	seed := opts.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) //lint:wallclock tracer ids and sampling need per-process entropy; virtual time is untouched
	}
	t := &Tracer{
		opts:   opts,
		idSeed: seed,
		active: make(map[uint64]*activeTrace),
		ch:     make(chan *Trace, 256),
		done:   make(chan struct{}),
	}
	switch {
	case opts.Sample >= 1:
		t.threshold = ^uint64(0)
	case opts.Sample > 0:
		t.threshold = uint64(opts.Sample * (1 << 63))
	}
	t.rng.Store(seed)
	go t.run()
	return t
}

// nowNS reads the wall clock for span timestamps.
func nowNS() int64 {
	return time.Now().UnixNano() //lint:wallclock spans measure real request latency; virtual durations ride Span.VirtPS
}

// splitmix64 is the id/sampling mixer: deterministic under Seed,
// well-distributed, and lock-free off an atomic counter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nextID yields a process-unique non-zero id.
func (t *Tracer) nextID() uint64 {
	id := splitmix64(t.idSeed + t.idCtr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// sampleNext rolls the head-sampling decision.
func (t *Tracer) sampleNext() bool {
	switch t.threshold {
	case 0:
		return false
	case ^uint64(0):
		return true
	}
	return splitmix64(t.rng.Add(1))>>1 < t.threshold
}

// StartRoot opens a new trace if the head sampler elects it, returning
// the root span's ref (zero when sampled out). Ending the root
// finalizes the trace.
func (t *Tracer) StartRoot(name, layer string, fn uint16) SpanRef {
	if t == nil || !t.sampleNext() {
		return SpanRef{}
	}
	traceID, spanID := t.nextID(), t.nextID()
	start := nowNS()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.active) >= t.opts.MaxActive {
		t.droppedActive.Add(1)
		return SpanRef{}
	}
	tr := &Trace{TraceID: traceID, StartNS: start,
		Spans: []Span{{SpanID: spanID, Name: name, Layer: layer, Fn: fn, StartNS: start}}}
	t.active[traceID] = &activeTrace{tr: tr, completer: spanID}
	return SpanRef{TraceID: traceID, SpanID: spanID}
}

// StartRemote joins a trace whose root lives in another process: the
// wire context supplies the trace id, the caller-side parent span id,
// and the originator's sampling decision (which is honoured, never
// re-rolled — that is what makes sampling coherent across a fleet).
// If the trace is unknown locally, a remote placeholder span is
// recorded for the parent and the new span becomes the trace's local
// completer.
func (t *Tracer) StartRemote(traceID, parentSpanID uint64, sampled bool, name, layer string, fn uint16) SpanRef {
	if t == nil || traceID == 0 || !sampled {
		return SpanRef{}
	}
	spanID := t.nextID()
	start := nowNS()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return SpanRef{}
	}
	at := t.active[traceID]
	if at == nil {
		if len(t.active) >= t.opts.MaxActive {
			t.droppedActive.Add(1)
			return SpanRef{}
		}
		tr := &Trace{TraceID: traceID, StartNS: start}
		if parentSpanID != 0 {
			tr.Spans = append(tr.Spans, Span{SpanID: parentSpanID, Name: "attempt",
				Layer: "client", Fn: fn, Remote: true, StartNS: start})
		}
		at = &activeTrace{tr: tr, completer: spanID}
		t.active[traceID] = at
	}
	at.tr.Spans = append(at.tr.Spans, Span{SpanID: spanID, Parent: parentSpanID,
		Name: name, Layer: layer, Fn: fn, StartNS: start})
	return SpanRef{TraceID: traceID, SpanID: spanID}
}

// StartChild opens a child span under parent. The zero parent yields
// the zero ref: sampled-out traces stay free.
func (t *Tracer) StartChild(parent SpanRef, name, layer string, fn uint16) SpanRef {
	if t == nil || !parent.Valid() {
		return SpanRef{}
	}
	spanID := t.nextID()
	start := nowNS()
	t.mu.Lock()
	defer t.mu.Unlock()
	at := t.active[parent.TraceID]
	if at == nil {
		return SpanRef{}
	}
	at.tr.Spans = append(at.tr.Spans, Span{SpanID: spanID, Parent: parent.SpanID,
		Name: name, Layer: layer, Fn: fn, StartNS: start})
	return SpanRef{TraceID: parent.TraceID, SpanID: spanID}
}

// Add records an already-timed span under parent — the shape the
// server uses for the queue-wait/service split it derives from the
// cluster's timestamps, and for the card's virtual phase spans. The
// SpanID and Parent fields of s are assigned by the tracer; the
// returned ref lets callers hang further children off the new span.
func (t *Tracer) Add(parent SpanRef, s Span) SpanRef {
	if t == nil || !parent.Valid() {
		return SpanRef{}
	}
	s.SpanID = t.nextID()
	s.Parent = parent.SpanID
	t.mu.Lock()
	defer t.mu.Unlock()
	at := t.active[parent.TraceID]
	if at == nil {
		return SpanRef{}
	}
	if s.Status != "" && s.Status != "ok" {
		at.tr.Err = true
	}
	at.tr.Spans = append(at.tr.Spans, s)
	return SpanRef{TraceID: parent.TraceID, SpanID: s.SpanID}
}

// End closes the span: its duration is stamped and, if the span is the
// trace's completer, the finished trace is handed to the collector. A
// status other than "" or "ok" marks the whole trace errored (which
// pins it in the error ring).
func (t *Tracer) End(ref SpanRef, status string) {
	if t == nil || !ref.Valid() {
		return
	}
	end := nowNS()
	t.mu.Lock()
	defer t.mu.Unlock()
	at := t.active[ref.TraceID]
	if at == nil {
		return
	}
	for i := range at.tr.Spans {
		if at.tr.Spans[i].SpanID == ref.SpanID {
			sp := &at.tr.Spans[i]
			sp.DurNS = end - sp.StartNS
			sp.Status = status
			if status != "" && status != "ok" {
				at.tr.Err = true
			}
			break
		}
	}
	if ref.SpanID != at.completer {
		return
	}
	delete(t.active, ref.TraceID)
	at.tr.DurNS = end - at.tr.StartNS
	if t.closed {
		// The collector is gone; file the trace synchronously so
		// nothing completed is ever lost to shutdown ordering.
		t.collect(at.tr)
		return
	}
	select {
	case t.ch <- at.tr:
	default:
		t.droppedFull.Add(1)
	}
}

// run is the collector goroutine: it drains completed traces into the
// capture rings until Close.
func (t *Tracer) run() {
	defer close(t.done)
	for tr := range t.ch {
		t.collect(tr)
	}
}

// collect files one completed trace: always into the recent ring,
// into the error ring when errored, and into the slowest-N tail ring
// when it beats the current minimum.
func (t *Tracer) collect(tr *Trace) {
	t.completed.Add(1)
	t.ringsMu.Lock()
	defer t.ringsMu.Unlock()
	if len(t.recent) < t.opts.RecentN {
		t.recent = append(t.recent, tr)
	} else {
		t.recent[t.recentPos] = tr
		t.recentPos = (t.recentPos + 1) % t.opts.RecentN
	}
	if tr.Err {
		if len(t.errs) < t.opts.ErrorN {
			t.errs = append(t.errs, tr)
		} else {
			t.errs[t.errsPos] = tr
			t.errsPos = (t.errsPos + 1) % t.opts.ErrorN
		}
	}
	if len(t.tail) < t.opts.TailN {
		t.tail = append(t.tail, tr)
		return
	}
	min := 0
	for i := 1; i < len(t.tail); i++ {
		if t.tail[i].DurNS < t.tail[min].DurNS {
			min = i
		}
	}
	if tr.DurNS > t.tail[min].DurNS {
		t.tail[min] = tr
	}
}

// Close stops the collector after draining every already-completed
// trace into the rings. Traces still active keep accumulating spans
// and are filed synchronously when their completer ends. Close is
// idempotent.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return
	}
	t.closed = true
	close(t.ch)
	t.mu.Unlock()
	<-t.done
}

// Captured snapshots the capture rings: the union of tail, error and
// recent traces (deduplicated), slowest first. The returned traces are
// complete and immutable; the slice is the caller's.
func (t *Tracer) Captured() []*Trace {
	if t == nil {
		return nil
	}
	t.ringsMu.Lock()
	seen := make(map[uint64]bool, len(t.tail)+len(t.errs)+len(t.recent))
	var out []*Trace
	for _, ring := range [][]*Trace{t.tail, t.errs, t.recent} {
		for _, tr := range ring {
			if !seen[tr.TraceID] {
				seen[tr.TraceID] = true
				out = append(out, tr)
			}
		}
	}
	t.ringsMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurNS != out[j].DurNS {
			return out[i].DurNS > out[j].DurNS
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Tail snapshots the slowest-N ring, slowest first.
func (t *Tracer) Tail() []*Trace {
	if t == nil {
		return nil
	}
	t.ringsMu.Lock()
	out := append([]*Trace(nil), t.tail...)
	t.ringsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurNS > out[j].DurNS })
	return out
}

// Errored snapshots the error ring in arrival order.
func (t *Tracer) Errored() []*Trace {
	if t == nil {
		return nil
	}
	t.ringsMu.Lock()
	defer t.ringsMu.Unlock()
	return append([]*Trace(nil), t.errs...)
}

// Completed counts traces the collector has filed.
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	return t.completed.Load()
}

// Dropped counts traces lost to backpressure (collector channel full)
// or to the MaxActive bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.droppedFull.Load() + t.droppedActive.Load()
}

// Active counts traces still being assembled.
func (t *Tracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// debugTraces is the /debug/traces JSON document.
type debugTraces struct {
	Sample    float64  `json:"sample"`
	Completed uint64   `json:"completed"`
	Dropped   uint64   `json:"dropped"`
	Active    int      `json:"active"`
	Traces    []*Trace `json:"traces"`
}

// WriteJSON dumps the captured traces (tail ∪ errors ∪ recent, slowest
// first) with collector counters as a single JSON document.
func (t *Tracer) WriteJSON(w http.ResponseWriter) error {
	w.Header().Set("Content-Type", "application/json")
	doc := debugTraces{Traces: []*Trace{}}
	if t != nil {
		doc.Sample = t.opts.Sample
		doc.Completed = t.Completed()
		doc.Dropped = t.Dropped()
		doc.Active = t.Active()
		if traces := t.Captured(); traces != nil {
			doc.Traces = traces
		}
	}
	return json.NewEncoder(w).Encode(&doc)
}

// Handler serves the captured traces: JSON by default, Chrome
// trace-event format with ?format=chrome (load in chrome://tracing or
// Perfetto for request-centric lanes). Safe on a nil Tracer, which
// serves an empty document.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeSpans(w, t.Captured())
			return
		}
		_ = t.WriteJSON(w)
	})
}
