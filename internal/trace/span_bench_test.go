package trace

import "testing"

// The span-lifecycle benchmarks bound the tracer's real-time cost at
// the three sampling settings E24 studies. The sampled-out arm is the
// one CI gates at 0 allocs/op: with Sample: 0 every StartRoot returns
// the zero SpanRef and each subsequent operation must be a pointer
// test and nothing else — that is what makes `-trace-sample 0` (the
// default) genuinely free on the request path.

// benchLifecycle drives the span shape of one traced client call —
// root call span, child attempt span, both ended — at a fixed
// sampling probability.
func benchLifecycle(b *testing.B, sample float64) {
	b.Helper()
	tr := NewTracer(TracerOptions{Sample: sample, Seed: 11})
	defer tr.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref := tr.StartRoot("call", "client", 7)
		aref := tr.StartChild(ref, "attempt", "client", 7)
		tr.End(aref, "ok")
		tr.End(ref, "ok")
	}
}

// BenchmarkSpanLifecycleSampledOut is the 0% arm: the no-op path every
// untraced request takes. Gated at 0 allocs/op in CI next to the wire
// RequestPath benchmarks.
func BenchmarkSpanLifecycleSampledOut(b *testing.B) { benchLifecycle(b, 0) }

// BenchmarkSpanLifecycleSampled1pct is the production-sampling arm:
// 99 of 100 iterations take the sampled-out path, 1 pays full price.
func BenchmarkSpanLifecycleSampled1pct(b *testing.B) { benchLifecycle(b, 0.01) }

// BenchmarkSpanLifecycleSampledAll is the 100% arm — the worst case,
// every call assembling and filing a two-span trace.
func BenchmarkSpanLifecycleSampledAll(b *testing.B) { benchLifecycle(b, 1) }
