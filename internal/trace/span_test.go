package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

// newTestTracer builds a deterministic always-sampling tracer.
func newTestTracer(opts TracerOptions) *Tracer {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	return NewTracer(opts)
}

func TestTracerNilAndZeroRefNoOps(t *testing.T) {
	var tr *Tracer
	ref := tr.StartRoot("call", "client", 1)
	if ref.Valid() {
		t.Fatal("nil tracer produced a valid ref")
	}
	tr.End(ref, "ok")
	tr.Close()
	if tr.Captured() != nil || tr.Completed() != 0 || tr.Active() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer leaked state")
	}
	// Zero refs on a live tracer: every op is a no-op.
	live := newTestTracer(TracerOptions{Sample: 1})
	defer live.Close()
	if live.StartChild(SpanRef{}, "x", "client", 1).Valid() {
		t.Fatal("child of the zero ref must be the zero ref")
	}
	if live.Add(SpanRef{}, Span{Name: "x"}).Valid() {
		t.Fatal("Add under the zero ref must be a no-op")
	}
	live.End(SpanRef{}, "ok")
	if live.Active() != 0 {
		t.Fatal("zero-ref ops created active state")
	}
}

func TestTracerHeadSampling(t *testing.T) {
	never := newTestTracer(TracerOptions{Sample: 0})
	defer never.Close()
	for i := 0; i < 100; i++ {
		if never.StartRoot("call", "client", 1).Valid() {
			t.Fatal("Sample=0 produced a sampled trace")
		}
	}
	always := newTestTracer(TracerOptions{Sample: 1})
	defer always.Close()
	for i := 0; i < 100; i++ {
		ref := always.StartRoot("call", "client", 1)
		if !ref.Valid() {
			t.Fatal("Sample=1 produced an unsampled trace")
		}
		always.End(ref, "ok")
	}
	// A fractional rate lands strictly between the extremes and is
	// reproducible under a fixed seed.
	count := func(seed uint64) int {
		half := NewTracer(TracerOptions{Sample: 0.5, Seed: seed})
		defer half.Close()
		n := 0
		for i := 0; i < 1000; i++ {
			ref := half.StartRoot("call", "client", 1)
			if ref.Valid() {
				n++
				half.End(ref, "ok")
			}
		}
		return n
	}
	n1, n2 := count(7), count(7)
	if n1 != n2 {
		t.Fatalf("sampling not deterministic under a fixed seed: %d vs %d", n1, n2)
	}
	if n1 < 300 || n1 > 700 {
		t.Fatalf("Sample=0.5 kept %d of 1000", n1)
	}
}

func TestTracerSpanTree(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1})
	defer tr.Close()
	root := tr.StartRoot("call", "client", 7)
	attempt := tr.StartChild(root, "attempt", "client", 7)
	rpc := tr.StartRemote(attempt.TraceID, attempt.SpanID, true, "rpc", "server", 7)
	if rpc.TraceID != root.TraceID {
		t.Fatal("StartRemote on a locally-known trace must join it")
	}
	queue := tr.Add(rpc, Span{Name: "queue-wait", Layer: "cluster", StartNS: 100, DurNS: 40})
	if !queue.Valid() {
		t.Fatal("Add returned the zero ref for a live trace")
	}
	svc := tr.Add(rpc, Span{Name: "service", Layer: "cluster", Card: 2, StartNS: 140, DurNS: 60})
	phase := tr.Add(svc, Span{Name: "exec", Layer: "card", Card: 2, VirtPS: 500_000})
	if !phase.Valid() {
		t.Fatal("virtual phase span rejected")
	}
	tr.End(rpc, "ok")
	tr.End(attempt, "ok")
	if tr.Completed() != 0 {
		t.Fatal("trace completed before its root ended")
	}
	tr.End(root, "ok")
	tr.Close() // drain
	got := tr.Captured()
	if len(got) != 1 {
		t.Fatalf("captured %d traces, want 1", len(got))
	}
	spans := got[0].Spans
	if len(spans) != 6 {
		t.Fatalf("trace has %d spans, want 6: %+v", len(spans), spans)
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["attempt"].Parent != root.SpanID {
		t.Fatal("attempt is not a child of the root call span")
	}
	if byName["rpc"].Parent != attempt.SpanID {
		t.Fatal("rpc is not a child of the wire-propagated attempt span")
	}
	if byName["queue-wait"].Parent != byName["rpc"].SpanID || byName["service"].Parent != byName["rpc"].SpanID {
		t.Fatal("queue/service are not children of the rpc span")
	}
	if byName["exec"].Parent != byName["service"].SpanID {
		t.Fatal("phase span is not a child of the service span")
	}
	if byName["call"].DurNS <= 0 {
		t.Fatal("root span has no duration")
	}
	if got[0].Err {
		t.Fatal("all-ok trace marked errored")
	}
}

func TestTracerRemoteRoot(t *testing.T) {
	// A server-side tracer joining a trace whose root lives in the
	// client process: a placeholder records the remote parent, and the
	// joined span completes the local view.
	tr := newTestTracer(TracerOptions{Sample: 1})
	defer tr.Close()
	rpc := tr.StartRemote(0xABCD, 0x1234, true, "rpc", "server", 3)
	if !rpc.Valid() || rpc.TraceID != 0xABCD {
		t.Fatalf("remote join ref = %+v", rpc)
	}
	tr.End(rpc, "ok")
	tr.Close()
	got := tr.Captured()
	if len(got) != 1 || got[0].TraceID != 0xABCD {
		t.Fatalf("captured = %+v", got)
	}
	var remote, local int
	for _, s := range got[0].Spans {
		if s.Remote {
			remote++
			if s.SpanID != 0x1234 {
				t.Fatalf("placeholder span id = %#x, want the wire parent id", s.SpanID)
			}
		} else {
			local++
			if s.Parent != 0x1234 {
				t.Fatal("joined span must hang off the remote parent")
			}
		}
	}
	if remote != 1 || local != 1 {
		t.Fatalf("remote=%d local=%d spans, want 1 and 1", remote, local)
	}
	// An unsampled or absent context must not join anything.
	if tr.StartRemote(0xABCD, 0x1234, false, "rpc", "server", 3).Valid() {
		t.Fatal("unsampled context joined a trace")
	}
	if tr.StartRemote(0, 0x1234, true, "rpc", "server", 3).Valid() {
		t.Fatal("zero trace id joined a trace")
	}
}

func TestTracerTailKeepsSlowest(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1, TailN: 3})
	// Complete 20 traces with ascending synthetic durations by ending
	// roots in order; wall durations are monotonic with completion
	// order here because each trace i sleeps longer... instead, fake
	// durations via direct collect.
	for i := 1; i <= 20; i++ {
		tr.collect(&Trace{TraceID: uint64(i), DurNS: int64(i) * 1000})
	}
	tr.Close()
	tail := tr.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail holds %d, want 3", len(tail))
	}
	for i, want := range []int64{20000, 19000, 18000} {
		if tail[i].DurNS != want {
			t.Fatalf("tail[%d].DurNS = %d, want %d (slowest-N not maintained)", i, tail[i].DurNS, want)
		}
	}
}

func TestTracerErrorRing(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1, TailN: 1, ErrorN: 4, RecentN: 1})
	// Errors must be pinned even when they are fast (evicted from both
	// the tail and recent rings).
	for i := 0; i < 8; i++ {
		ref := tr.StartRoot("call", "client", 1)
		status := "ok"
		if i%2 == 1 {
			status = "internal"
		}
		tr.End(ref, status)
	}
	tr.Close()
	errs := tr.Errored()
	if len(errs) != 4 {
		t.Fatalf("error ring holds %d, want 4", len(errs))
	}
	for _, e := range errs {
		if !e.Err {
			t.Fatal("non-errored trace in the error ring")
		}
	}
	if tr.Completed() != 8 {
		t.Fatalf("completed = %d, want 8", tr.Completed())
	}
}

// TestTracerCloseDrains is the shutdown-ordering property: every trace
// completed before Close must be visible in the rings after Close
// returns, even though collection is asynchronous — and completions
// racing past Close must be filed synchronously, never lost or panic.
func TestTracerCloseDrains(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1, TailN: 64, RecentN: 64})
	var late []SpanRef
	for i := 0; i < 50; i++ {
		ref := tr.StartRoot("call", "client", 1)
		if i < 40 {
			tr.End(ref, "ok")
		} else {
			late = append(late, ref)
		}
	}
	tr.Close()
	if got := tr.Completed(); got != 40 {
		t.Fatalf("after Close: completed = %d, want 40 (tail ring failed to drain)", got)
	}
	// Spans still in flight at Close complete synchronously.
	for _, ref := range late {
		tr.End(ref, "ok")
	}
	if got := tr.Completed(); got != 50 {
		t.Fatalf("post-Close completions lost: completed = %d, want 50", got)
	}
	if tr.Active() != 0 {
		t.Fatalf("active = %d after all completions", tr.Active())
	}
	tr.Close() // idempotent
	// New roots after Close are refused, not leaked into active state.
	if tr.StartRoot("call", "client", 1).Valid() {
		t.Fatal("StartRoot succeeded after Close")
	}
}

func TestTracerMaxActiveBound(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1, MaxActive: 4})
	defer tr.Close()
	refs := make([]SpanRef, 0, 4)
	for i := 0; i < 4; i++ {
		refs = append(refs, tr.StartRoot("call", "client", 1))
	}
	if tr.StartRoot("call", "client", 1).Valid() {
		t.Fatal("MaxActive not enforced")
	}
	if tr.Dropped() == 0 {
		t.Fatal("drop not counted")
	}
	tr.End(refs[0], "ok")
	if !tr.StartRoot("call", "client", 1).Valid() {
		t.Fatal("slot not released after completion")
	}
}

func TestTracerHandlerJSONAndChrome(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1})
	root := tr.StartRoot("call", "client", 7)
	svc := tr.Add(root, Span{Name: "service", Layer: "cluster", Card: 1, StartNS: 10, DurNS: 20})
	tr.Add(svc, Span{Name: "exec", Layer: "card", Card: 1, VirtPS: 1_000_000})
	tr.End(root, "ok")
	tr.Close()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var doc struct {
		Sample    float64 `json:"sample"`
		Completed uint64  `json:"completed"`
		Traces    []Trace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("handler output not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Completed != 1 || len(doc.Traces) != 1 || doc.Sample != 1 {
		t.Fatalf("handler doc = %+v", doc)
	}
	if len(doc.Traces[0].Spans) != 3 {
		t.Fatalf("handler trace spans = %d, want 3", len(doc.Traces[0].Spans))
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=chrome", nil))
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export empty")
	}

	// A nil tracer serves an empty but well-formed document (the debug
	// surface stays up when tracing is off).
	var nilTr *Tracer
	rec = httptest.NewRecorder()
	nilTr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil handler output not JSON: %v", err)
	}
}

func TestTracerIDsUniqueAndNonZero(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1})
	defer tr.Close()
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		ref := tr.StartRoot("call", "client", 1)
		if ref.TraceID == 0 || ref.SpanID == 0 {
			t.Fatal("zero id issued")
		}
		if seen[ref.TraceID] || seen[ref.SpanID] {
			t.Fatalf("id collision at %d", i)
		}
		seen[ref.TraceID], seen[ref.SpanID] = true, true
		tr.End(ref, "ok")
	}
}

func TestTracerConcurrentCompletion(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sample: 1, TailN: 8})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ref := tr.StartRoot("call", "client", uint16(g))
				child := tr.StartChild(ref, "attempt", "client", uint16(g))
				tr.Add(child, Span{Name: "service", Layer: "cluster", StartNS: 1, DurNS: 2})
				tr.End(child, "ok")
				tr.End(ref, fmt.Sprintf("status-%d", g%2*3)) // alternate ok-ish statuses
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	tr.Close()
	if got := tr.Completed() + tr.Dropped(); got != 8*200 {
		t.Fatalf("completed+dropped = %d, want 1600", got)
	}
}
