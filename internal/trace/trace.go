// Package trace records the co-processor's behaviour as a structured
// event log: every request, hit, miss, placement, eviction,
// configuration, prefetch and error, stamped with the card's virtual
// time. Logs export as JSON lines for offline analysis (agilesim -trace),
// as Chrome trace-event JSON for timeline rendering (see WriteChromeTrace),
// and power the session summaries the examples print.
//
// Recording is opt-in and allocation-light: a nil *Log is a valid sink
// that records nothing, so instrumented code never branches on "is
// tracing enabled" beyond the nil receiver check Go gives for free.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies an event.
type Kind string

// Event kinds.
const (
	KindRequest   Kind = "request"   // a host call arrived (fn)
	KindHit       Kind = "hit"       // served from resident frames
	KindMiss      Kind = "miss"      // function had to be loaded
	KindPlace     Kind = "place"     // frames allocated (frames)
	KindEvict     Kind = "evict"     // function displaced (fn, frames)
	KindConfigure Kind = "configure" // bitstream written (fn, bytes)
	KindRevive    Kind = "revive"    // diff-flow revival (fn, frames)
	KindPrefetch  Kind = "prefetch"  // speculative load (fn)
	KindError     Kind = "error"     // request failed (detail)
	KindSpan      Kind = "span"      // one phase of one request (detail = phase, dur_ps)
	KindDrop      Kind = "drop"      // overflow marker: oldest events dropped (detail)
)

// Event is one log entry. TimePS is the card's virtual time in
// picoseconds at the moment of recording; DurPS, set only on span
// events, is the phase's virtual duration. Card identifies the emitting
// card in a cluster (0 for a single-card system). TraceID/SpanID, set
// when the serving request carried distributed-trace context, attach
// the card-side record to the owning request's span tree (the span id
// is the request's cluster service span).
type Event struct {
	Seq     uint64 `json:"seq"`
	TimePS  uint64 `json:"time_ps"`
	Kind    Kind   `json:"kind"`
	Fn      uint16 `json:"fn,omitempty"`
	Frames  int    `json:"frames,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Card    int    `json:"card,omitempty"`
	DurPS   uint64 `json:"dur_ps,omitempty"`
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// Log is an in-memory event recorder. The zero value is ready to use; a
// nil *Log silently discards events.
type Log struct {
	mu      sync.Mutex
	events  []Event
	seq     uint64
	counts  map[Kind]int
	dropped uint64
	// Cap bounds the log length; beyond it, the oldest half is dropped
	// and a KindDrop marker notes the loss. Zero means 1<<20 events.
	Cap int
}

// Record appends an event. Safe on a nil receiver (no-op) and for
// concurrent use.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.counts == nil {
		l.counts = make(map[Kind]int)
	}
	cap := l.Cap
	if cap == 0 {
		cap = 1 << 20
	}
	if len(l.events) >= cap {
		drop := len(l.events) / 2
		for _, old := range l.events[:drop] {
			l.counts[old.Kind]--
		}
		l.events = append(l.events[:0], l.events[drop:]...)
		l.dropped += uint64(drop)
		l.seq++
		marker := Event{
			Seq: l.seq, Kind: KindDrop,
			Detail: fmt.Sprintf("trace overflow: dropped %d oldest events", drop),
		}
		l.events = append(l.events, marker)
		l.counts[KindDrop]++
	}
	l.seq++
	e.Seq = l.seq
	l.events = append(l.events, e)
	l.counts[e.Kind]++
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Dropped reports how many events overflow handling has discarded over
// the log's lifetime (KindDrop markers themselves are not counted).
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the log.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Count tallies events of one kind currently held in the log. Tallies
// are maintained at Record time, so Count is O(1) regardless of log
// length.
func (l *Log) Count(k Kind) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[k]
}

// WriteJSONL streams the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines log (the inverse of WriteJSONL).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}
