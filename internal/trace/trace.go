// Package trace records the co-processor's behaviour as a structured
// event log: every request, hit, miss, placement, eviction,
// configuration, prefetch and error, stamped with the card's virtual
// time. Logs export as JSON lines for offline analysis (agilesim -trace)
// and power the session summaries the examples print.
//
// Recording is opt-in and allocation-light: a nil *Log is a valid sink
// that records nothing, so instrumented code never branches on "is
// tracing enabled" beyond the nil receiver check Go gives for free.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies an event.
type Kind string

// Event kinds.
const (
	KindRequest   Kind = "request"   // a host call arrived (fn)
	KindHit       Kind = "hit"       // served from resident frames
	KindMiss      Kind = "miss"      // function had to be loaded
	KindPlace     Kind = "place"     // frames allocated (frames)
	KindEvict     Kind = "evict"     // function displaced (fn, frames)
	KindConfigure Kind = "configure" // bitstream written (fn, bytes)
	KindRevive    Kind = "revive"    // diff-flow revival (fn, frames)
	KindPrefetch  Kind = "prefetch"  // speculative load (fn)
	KindError     Kind = "error"     // request failed (detail)
)

// Event is one log entry. TimePS is the card's virtual time in
// picoseconds at the moment of recording.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimePS uint64 `json:"time_ps"`
	Kind   Kind   `json:"kind"`
	Fn     uint16 `json:"fn,omitempty"`
	Frames int    `json:"frames,omitempty"`
	Bytes  int    `json:"bytes,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Log is an in-memory event recorder. The zero value is ready to use; a
// nil *Log silently discards events.
type Log struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
	// Cap bounds the log length; beyond it, the oldest half is dropped
	// and a marker event notes the loss. Zero means 1<<20 events.
	Cap int
}

// Record appends an event. Safe on a nil receiver (no-op) and for
// concurrent use.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cap := l.Cap
	if cap == 0 {
		cap = 1 << 20
	}
	if len(l.events) >= cap {
		dropped := len(l.events) / 2
		l.events = append(l.events[:0], l.events[dropped:]...)
		l.seq++
		l.events = append(l.events, Event{
			Seq: l.seq, Kind: KindError,
			Detail: fmt.Sprintf("trace overflow: dropped %d oldest events", dropped),
		})
	}
	l.seq++
	e.Seq = l.seq
	l.events = append(l.events, e)
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the log.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Count tallies events of one kind.
func (l *Log) Count(k Kind) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WriteJSONL streams the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines log (the inverse of WriteJSONL).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}
