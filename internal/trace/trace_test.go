package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Record(Event{Kind: KindRequest})
	if l.Len() != 0 || l.Events() != nil || l.Count(KindRequest) != 0 {
		t.Error("nil log misbehaved")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil log wrote output")
	}
}

func TestRecordAndQuery(t *testing.T) {
	l := &Log{}
	l.Record(Event{Kind: KindRequest, Fn: 3, TimePS: 100})
	l.Record(Event{Kind: KindHit, Fn: 3, TimePS: 150})
	l.Record(Event{Kind: KindRequest, Fn: 4, TimePS: 200})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(KindRequest) != 2 || l.Count(KindHit) != 1 || l.Count(KindEvict) != 0 {
		t.Error("counts wrong")
	}
	ev := l.Events()
	if ev[0].Seq != 1 || ev[2].Seq != 3 {
		t.Error("sequence numbers wrong")
	}
	// Events() is a copy.
	ev[0].Fn = 99
	if l.Events()[0].Fn != 3 {
		t.Error("Events aliases internal storage")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := &Log{}
	l.Record(Event{Kind: KindConfigure, Fn: 7, Frames: 9, Bytes: 6048, Detail: "framediff", TimePS: 42})
	l.Record(Event{Kind: KindError, Detail: "boom"})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("%d lines", got)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != l.Events()[0] || events[1].Detail != "boom" {
		t.Errorf("round trip mismatch: %+v", events)
	}
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestOverflowDropsOldest(t *testing.T) {
	l := &Log{Cap: 10}
	for i := 0; i < 25; i++ {
		l.Record(Event{Kind: KindRequest, Fn: uint16(i)})
	}
	if l.Len() > 12 {
		t.Errorf("log grew to %d despite cap", l.Len())
	}
	found := false
	for _, e := range l.Events() {
		if e.Kind == KindDrop && strings.Contains(e.Detail, "overflow") {
			found = true
		}
	}
	if !found {
		t.Error("no overflow marker")
	}
	// The marker is not an error: KindError stays clean.
	if got := l.Count(KindError); got != 0 {
		t.Errorf("overflow polluted Count(KindError) = %d", got)
	}
	// Dropped events are accounted.
	if l.Dropped() == 0 {
		t.Error("Dropped() = 0 after overflow")
	}
	// The newest event survives.
	ev := l.Events()
	if ev[len(ev)-1].Fn != 24 {
		t.Error("newest event lost")
	}
}

func TestCountTracksOverflow(t *testing.T) {
	l := &Log{Cap: 10}
	for i := 0; i < 25; i++ {
		k := KindRequest
		if i%2 == 1 {
			k = KindHit
		}
		l.Record(Event{Kind: k, Fn: uint16(i)})
	}
	// O(1) tallies must match a full scan after overflow halving.
	want := map[Kind]int{}
	for _, e := range l.Events() {
		want[e.Kind]++
	}
	for _, k := range []Kind{KindRequest, KindHit, KindDrop, KindError} {
		if got := l.Count(k); got != want[k] {
			t.Errorf("Count(%s) = %d, scan says %d", k, got, want[k])
		}
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":          "{not json",
		"truncated object": `{"seq":1,"kind":"requ`,
		"truncated stream": `{"seq":1,"time_ps":5,"kind":"request"}` + "\n" + `{"seq":2,"ki`,
		"wrong type":       `{"seq":"one","kind":"request"}`,
		"bare array":       `[1,2,3]`,
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
	// Empty input is a valid empty log, not an error.
	events, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty input: events=%v err=%v", events, err)
	}
	// Whitespace-only likewise.
	if _, err := ReadJSONL(strings.NewReader("\n\n  \n")); err != nil {
		t.Errorf("whitespace input rejected: %v", err)
	}
}

func TestReadJSONLPreservesNewFields(t *testing.T) {
	l := &Log{}
	l.Record(Event{Kind: KindSpan, Fn: 7, TimePS: 100, DurPS: 40, Detail: "configure", Card: 3})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Card != 3 || events[0].DurPS != 40 {
		t.Errorf("span round trip lost fields: %+v", events)
	}
}

func TestConcurrentRecord(t *testing.T) {
	l := &Log{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(Event{Kind: KindRequest, Fn: uint16(g)})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("Len = %d, want 800", l.Len())
	}
}
