package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// The chain verb (DESIGN §15): a TypeChain frame asks the server to run
// a whole stage list as one on-card dataflow chain, shipping the input
// once and collecting only the final output. The frame is gated the
// same way trace context is — an old peer that only understands
// TypeRequest rejects a chain frame with ErrBadType and answers nothing
// it would misinterpret — and the trace-context extension composes: a
// traced chain frame is VersionTraced with the 17-byte context between
// the payload-length field and the stage list.
//
// A chain frame's type-specific header is
//
//	uint64   request id
//	uint8    stage count (2..MaxChainStages)
//	uint64   relative deadline (ns, 0 = none)
//	uint32   payload length
//	[17]byte trace context (VersionTraced only)
//	[]uint16 stage function ids (big-endian, stage-count entries)
//	[]byte   payload
//
// Responses to chain requests are ordinary TypeResponse frames.

// MaxChainStages bounds a chain frame's stage list. It mirrors
// mcu.MaxChainStages (wire cannot import mcu), so any frame that
// decodes names a chain the card could execute.
const MaxChainStages = 8

// ErrBadChain rejects a chain frame whose stage count is outside
// [2, MaxChainStages] — including an empty stage list and an oversized
// one, both of which a canonical encoder can never emit.
var ErrBadChain = errors.New("wire: chain stage count out of range")

// chainHeaderBase counts the fixed header bytes of an untraced chain
// frame: magic ver type id nstages deadline paylen.
const chainHeaderBase = 2 + 1 + 1 + 8 + 1 + 8 + 4

// chainHeaderMax is the largest header any chain frame can carry.
const chainHeaderMax = chainHeaderBase + TraceContextLen + 2*MaxChainStages

// TypeChain is the chain-request frame type. (3; TypeRequest and
// TypeResponse are 1 and 2.)
const TypeChain = 3

// ChainRequest is one chained call: run the Stages in order over
// Payload as an on-card dataflow chain. ID, Deadline and Trace behave
// exactly as on Request.
type ChainRequest struct {
	ID       uint64
	Stages   []uint16
	Deadline time.Duration
	Payload  []byte
	Trace    TraceContext
}

// AppendChainRequest appends req's canonical encoding to dst: a Version
// frame when req.Trace is absent, VersionTraced otherwise.
func AppendChainRequest(dst []byte, req *ChainRequest) []byte {
	headerLen, version := chainHeaderBase, byte(Version)
	if req.Trace.Valid() {
		headerLen, version = chainHeaderBase+TraceContextLen, byte(VersionTraced)
	}
	headerLen += 2 * len(req.Stages)
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+len(req.Payload)))
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, version, TypeChain)
	dst = binary.BigEndian.AppendUint64(dst, req.ID)
	dst = append(dst, byte(len(req.Stages)))
	dl := req.Deadline
	if dl < 0 {
		dl = 0
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(dl.Nanoseconds()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Payload)))
	if req.Trace.Valid() {
		dst = binary.BigEndian.AppendUint64(dst, req.Trace.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, req.Trace.SpanID)
		dst = append(dst, req.Trace.Flags&traceFlagsMask)
	}
	for _, fn := range req.Stages {
		dst = binary.BigEndian.AppendUint16(dst, fn)
	}
	return append(dst, req.Payload...)
}

// DecodeChainRequestInto decodes one chain frame from the front of b
// into *req without copying: req.Payload aliases b (req.Stages is
// decoded out, it cannot alias big-endian bytes). It returns the bytes
// consumed. Decoding is strict like the other decoders: any frame a
// canonical encoder could not have produced is rejected.
func DecodeChainRequestInto(req *ChainRequest, b []byte) (int, error) {
	if len(b) < lenPrefix {
		return 0, ErrTruncated
	}
	frameLen := int(binary.BigEndian.Uint32(b))
	if frameLen > chainHeaderMax+MaxPayload {
		return 0, ErrOversized
	}
	if frameLen < chainHeaderBase || len(b)-lenPrefix < frameLen {
		return 0, ErrTruncated
	}
	body := b[lenPrefix : lenPrefix+frameLen]
	if binary.BigEndian.Uint16(body) != Magic {
		return 0, ErrBadMagic
	}
	traced := false
	switch body[2] {
	case Version:
	case VersionTraced:
		traced = true
	default:
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, body[2], Version)
	}
	if body[3] != TypeChain {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadType, body[3], TypeChain)
	}
	nstages := int(body[12])
	if nstages < 2 || nstages > MaxChainStages {
		return 0, fmt.Errorf("%w: %d stages", ErrBadChain, nstages)
	}
	headerLen := chainHeaderBase + 2*nstages
	if traced {
		headerLen += TraceContextLen
	}
	if frameLen < headerLen {
		return 0, ErrTruncated
	}
	payLen := int(binary.BigEndian.Uint32(body[21:25]))
	if payLen != len(body)-headerLen {
		return 0, fmt.Errorf("%w: header says %d, frame carries %d",
			ErrLengthMismatch, payLen, len(body)-headerLen)
	}
	dlNs := binary.BigEndian.Uint64(body[13:21])
	if dlNs > math.MaxInt64 {
		return 0, ErrBadDeadline
	}
	off := chainHeaderBase
	if traced {
		req.Trace.TraceID = binary.BigEndian.Uint64(body[25:33])
		req.Trace.SpanID = binary.BigEndian.Uint64(body[33:41])
		req.Trace.Flags = body[41]
		if !req.Trace.Valid() || req.Trace.Flags&^uint8(traceFlagsMask) != 0 {
			return 0, ErrBadTraceContext
		}
		off += TraceContextLen
	} else {
		req.Trace = TraceContext{}
	}
	if cap(req.Stages) < nstages {
		req.Stages = make([]uint16, nstages)
	}
	req.Stages = req.Stages[:nstages]
	for i := 0; i < nstages; i++ {
		req.Stages[i] = binary.BigEndian.Uint16(body[off+2*i:])
	}
	req.ID = binary.BigEndian.Uint64(body[4:12])
	req.Deadline = time.Duration(dlNs)
	req.Payload = body[headerLen:]
	return lenPrefix + len(body), nil
}

// DecodeChainRequest decodes one chain frame from the front of b,
// returning the bytes consumed. The payload is copied out of b, so the
// request owns its memory.
func DecodeChainRequest(b []byte) (*ChainRequest, int, error) {
	var req ChainRequest
	n, err := DecodeChainRequestInto(&req, b)
	if err != nil {
		return nil, 0, err
	}
	req.Payload = append([]byte(nil), req.Payload...)
	return &req, n, nil
}

// WriteChainRequest writes req to w as a single Write call.
func WriteChainRequest(w io.Writer, req *ChainRequest) error {
	if len(req.Payload) > MaxPayload {
		return ErrOversized
	}
	if len(req.Stages) < 2 || len(req.Stages) > MaxChainStages {
		return fmt.Errorf("%w: %d stages", ErrBadChain, len(req.Stages))
	}
	bp := getBuf(lenPrefix + chainHeaderMax + len(req.Payload))
	*bp = AppendChainRequest(*bp, req)
	_, err := w.Write(*bp)
	putBuf(bp)
	return err
}

// AnyRequest is the result of a combined server-side read: exactly one
// of Plain/Chain semantics applies, discriminated by IsChain. The
// payloads of both views alias the frame buffer the read returned.
type AnyRequest struct {
	IsChain bool
	Plain   Request
	Chain   ChainRequest
}

// ID reports the request id regardless of kind.
func (a *AnyRequest) ID() uint64 {
	if a.IsChain {
		return a.Chain.ID
	}
	return a.Plain.ID
}

// Fn reports the function the request names — stage 0 for a chain —
// the id metrics and trace spans label the request with.
func (a *AnyRequest) Fn() uint16 {
	if a.IsChain {
		if len(a.Chain.Stages) == 0 {
			return 0
		}
		return a.Chain.Stages[0]
	}
	return a.Plain.Fn
}

// Deadline reports the relative deadline regardless of kind.
func (a *AnyRequest) Deadline() time.Duration {
	if a.IsChain {
		return a.Chain.Deadline
	}
	return a.Plain.Deadline
}

// Trace reports the trace context regardless of kind.
func (a *AnyRequest) TraceContext() TraceContext {
	if a.IsChain {
		return a.Chain.Trace
	}
	return a.Plain.Trace
}

// ReadAnyRequestFrame reads one frame from r and decodes it as either a
// plain request or a chain request, discriminating on the frame's type
// byte — the server's combined read path. Zero-copy like
// ReadRequestFrame: the decoded payload aliases the returned Frame
// until Release.
func ReadAnyRequestFrame(r io.Reader, req *AnyRequest) (Frame, error) {
	bp, err := readFrame(r, requestHeaderLen, chainHeaderMax)
	if err != nil {
		return Frame{}, err
	}
	b := *bp
	// The frame type sits right after the 4-byte prefix and 2-byte magic
	// + 1-byte version; readFrame guarantees at least requestHeaderLen
	// body bytes, so the peek is in bounds.
	req.IsChain = b[lenPrefix+3] == TypeChain
	if req.IsChain {
		if _, err := DecodeChainRequestInto(&req.Chain, b); err != nil {
			putBuf(bp)
			return Frame{}, err
		}
	} else if _, err := DecodeRequestInto(&req.Plain, b); err != nil {
		putBuf(bp)
		return Frame{}, err
	}
	return Frame{bp: bp}, nil
}
