package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// chainFrame hand-assembles a chain frame with an arbitrary stage count
// byte — shapes the encoder refuses to emit (empty or oversized stage
// lists) that the decoder must reject.
func chainFrame(nstages int, stages []uint16, payload []byte) []byte {
	headerLen := chainHeaderBase + 2*len(stages)
	b := make([]byte, 0, lenPrefix+headerLen+len(payload))
	b = binary.BigEndian.AppendUint32(b, uint32(headerLen+len(payload)))
	b = binary.BigEndian.AppendUint16(b, Magic)
	b = append(b, Version, TypeChain)
	b = binary.BigEndian.AppendUint64(b, 1) // id
	b = append(b, byte(nstages))
	b = binary.BigEndian.AppendUint64(b, 0) // deadline
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	for _, fn := range stages {
		b = binary.BigEndian.AppendUint16(b, fn)
	}
	return append(b, payload...)
}

// FuzzDecodeChain drives the chain decoder with arbitrary bytes: it
// must never panic, never accept a stage list the card could not run,
// and every accepted frame must re-encode to exactly the bytes it
// consumed.
func FuzzDecodeChain(f *testing.F) {
	// Valid chains, untraced and traced.
	f.Add(AppendChainRequest(nil, &ChainRequest{ID: 1, Stages: []uint16{3, 4},
		Deadline: time.Second, Payload: []byte("seed")}))
	f.Add(AppendChainRequest(nil, &ChainRequest{ID: 2, Stages: []uint16{1, 2, 3, 4, 5, 6, 7, 8},
		Payload: bytes.Repeat([]byte{0x5A}, 300)}))
	f.Add(AppendChainRequest(nil, &ChainRequest{ID: 3, Stages: []uint16{9, 10},
		Deadline: time.Minute, Payload: []byte("ctx"),
		Trace: TraceContext{TraceID: 0xDEAD, SpanID: 0xBEEF, Flags: FlagSampled}}))
	// Empty chain: a zero stage count is non-canonical and must be
	// rejected, not decoded as a request with no work.
	f.Add(chainFrame(0, nil, []byte("p")))
	// Oversized stage list: more stages than the card's latch.
	f.Add(chainFrame(MaxChainStages+1, make([]uint16, MaxChainStages+1), []byte("p")))
	// One stage: chaining starts at two.
	f.Add(chainFrame(1, []uint16{5}, []byte("p")))
	// A plain request frame fed to the chain decoder (type mismatch).
	f.Add(AppendRequest(nil, &Request{ID: 9, Fn: 2, Payload: []byte("abc")}))
	// Truncation inside the stage list.
	valid := AppendChainRequest(nil, &ChainRequest{ID: 4, Stages: []uint16{1, 2, 3}, Payload: []byte("abc")})
	f.Add(valid[:lenPrefix+chainHeaderBase+3])
	f.Add(valid[:len(valid)-1])
	// Malformed trace context inside an otherwise valid traced chain.
	mft := AppendChainRequest(nil, &ChainRequest{ID: 5, Stages: []uint16{1, 2}, Payload: []byte("p"),
		Trace: TraceContext{TraceID: 7, SpanID: 8, Flags: FlagSampled}})
	mft[lenPrefix+25+7] = 0 // zero the trace id's low byte... (still nonzero id; keep as mutation seed)
	f.Add(mft)

	f.Fuzz(func(t *testing.T, data []byte) {
		req, n, err := DecodeChainRequest(data)
		if err != nil {
			if req != nil || n != 0 {
				t.Fatalf("failed decode leaked state: req=%v n=%d", req, n)
			}
			return
		}
		if len(req.Stages) < 2 || len(req.Stages) > MaxChainStages {
			t.Fatalf("accepted %d stages", len(req.Stages))
		}
		if n > len(data) || len(req.Payload) > MaxPayload || req.Deadline < 0 {
			t.Fatalf("bad accept: n=%d payload=%d deadline=%v", n, len(req.Payload), req.Deadline)
		}
		reenc := AppendChainRequest(nil, req)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], reenc)
		}
	})
}

func TestChainRoundTrip(t *testing.T) {
	for _, req := range []*ChainRequest{
		{ID: 1, Stages: []uint16{3, 4}, Deadline: time.Second, Payload: []byte("hello")},
		{ID: 1<<64 - 1, Stages: []uint16{1, 2, 3, 4, 5, 6, 7, 8}, Payload: []byte{}},
		{ID: 7, Stages: []uint16{9, 10}, Payload: []byte("traced"),
			Trace: TraceContext{TraceID: 0xFEED, SpanID: 0x1001, Flags: FlagSampled}},
	} {
		b := AppendChainRequest(nil, req)
		got, n, err := DecodeChainRequest(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		if got.ID != req.ID || got.Deadline != req.Deadline || got.Trace != req.Trace {
			t.Fatalf("fields differ: %+v vs %+v", got, req)
		}
		if len(got.Stages) != len(req.Stages) {
			t.Fatalf("stage count differs")
		}
		for i := range got.Stages {
			if got.Stages[i] != req.Stages[i] {
				t.Fatalf("stage %d differs", i)
			}
		}
		if !bytes.Equal(got.Payload, req.Payload) {
			t.Fatalf("payload differs")
		}
	}
}

// TestChainRejections pins the decoder's strictness: every non-canonical
// chain shape is refused with the right sentinel.
func TestChainRejections(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty chain", chainFrame(0, nil, []byte("p")), ErrBadChain},
		{"one stage", chainFrame(1, []uint16{5}, []byte("p")), ErrBadChain},
		{"oversized stage list", chainFrame(MaxChainStages+1, make([]uint16, MaxChainStages+1), []byte("p")), ErrBadChain},
		{"plain request frame", AppendRequest(nil, &Request{ID: 9, Fn: 2, Payload: []byte("abc")}), ErrBadType},
		// Long enough that the body passes the minimum-length check and
		// the type byte is what rejects it.
		{"response frame", AppendResponse(nil, &Response{ID: 9, Payload: bytes.Repeat([]byte{'x'}, 32)}), ErrBadType},
		{"truncated stage list", AppendChainRequest(nil, &ChainRequest{ID: 4, Stages: []uint16{1, 2, 3},
			Payload: []byte("abc")})[:lenPrefix+chainHeaderBase+2], ErrTruncated},
	}
	for _, tc := range cases {
		if _, _, err := DecodeChainRequest(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A chain frame sent to a v1 peer: the plain request decoder must
	// reject it on frame type, never misread the stage list as header
	// fields.
	chain := AppendChainRequest(nil, &ChainRequest{ID: 6, Stages: []uint16{3, 4}, Payload: []byte("x")})
	if _, _, err := DecodeRequest(chain); !errors.Is(err, ErrBadType) {
		t.Errorf("chain frame to v1 peer: got %v, want ErrBadType", err)
	}
	// Length-mismatch inside the chain header.
	bad := chainFrame(2, []uint16{1, 2}, []byte("abc"))
	binary.BigEndian.PutUint32(bad[lenPrefix+21:], 99)
	if _, _, err := DecodeChainRequest(bad); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("length mismatch: got %v", err)
	}
	// Non-canonical trace context: zero trace id under VersionTraced.
	tr := chainFrame(2, []uint16{1, 2}, []byte("p"))
	// Rebuild as traced with a zero trace id.
	traced := make([]byte, 0, len(tr)+TraceContextLen)
	headerLen := chainHeaderBase + TraceContextLen + 4
	traced = binary.BigEndian.AppendUint32(traced, uint32(headerLen+1))
	traced = binary.BigEndian.AppendUint16(traced, Magic)
	traced = append(traced, VersionTraced, TypeChain)
	traced = binary.BigEndian.AppendUint64(traced, 1)
	traced = append(traced, 2)
	traced = binary.BigEndian.AppendUint64(traced, 0)
	traced = binary.BigEndian.AppendUint32(traced, 1)
	traced = binary.BigEndian.AppendUint64(traced, 0) // zero trace id
	traced = binary.BigEndian.AppendUint64(traced, 9)
	traced = append(traced, FlagSampled)
	traced = binary.BigEndian.AppendUint16(traced, 1)
	traced = binary.BigEndian.AppendUint16(traced, 2)
	traced = append(traced, 'p')
	if _, _, err := DecodeChainRequest(traced); !errors.Is(err, ErrBadTraceContext) {
		t.Errorf("zero trace id: got %v", err)
	}
}

// TestReadAnyRequestFrame exercises the server's combined read path:
// a plain frame and a chain frame on one stream, each dispatched by
// type, payloads aliasing the pooled buffer until Release.
func TestReadAnyRequestFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{ID: 1, Fn: 7, Payload: []byte("plain")}); err != nil {
		t.Fatal(err)
	}
	if err := WriteChainRequest(&buf, &ChainRequest{ID: 2, Stages: []uint16{3, 4}, Payload: []byte("chain")}); err != nil {
		t.Fatal(err)
	}
	var any AnyRequest
	fr, err := ReadAnyRequestFrame(&buf, &any)
	if err != nil {
		t.Fatal(err)
	}
	if any.IsChain || any.Plain.ID != 1 || string(any.Plain.Payload) != "plain" {
		t.Fatalf("first frame decoded wrong: %+v", any)
	}
	if any.ID() != 1 {
		t.Fatalf("ID() = %d", any.ID())
	}
	fr.Release()
	fr, err = ReadAnyRequestFrame(&buf, &any)
	if err != nil {
		t.Fatal(err)
	}
	if !any.IsChain || any.Chain.ID != 2 || string(any.Chain.Payload) != "chain" {
		t.Fatalf("second frame decoded wrong: %+v", any)
	}
	if any.ID() != 2 || len(any.Chain.Stages) != 2 {
		t.Fatalf("chain accessors wrong: id=%d stages=%v", any.ID(), any.Chain.Stages)
	}
	fr.Release()
}
