package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeRequest drives the request decoder with arbitrary bytes.
// Two invariants must hold for every input: the decoder never panics,
// and any frame it accepts re-encodes to exactly the bytes it consumed
// (the encoding is canonical, so decode ∘ encode is the identity on
// valid frames).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{ID: 1, Fn: 7, Deadline: time.Second, Payload: []byte("seed")}))
	f.Add(AppendRequest(nil, &Request{ID: 0, Fn: 0, Payload: []byte{}}))
	f.Add(AppendRequest(nil, &Request{ID: 1<<64 - 1, Fn: 1<<16 - 1, Deadline: time.Hour,
		Payload: bytes.Repeat([]byte{0x5A}, 300)}))
	// Hostile shapes: truncated, bad magic, huge length prefix,
	// mismatched inner length, response frame fed to the request
	// decoder.
	valid := AppendRequest(nil, &Request{ID: 9, Fn: 2, Payload: []byte("abc")})
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 26, 0xA6, 0x1E, 1, 2})
	f.Add(AppendResponse(nil, &Response{ID: 9, Status: StatusOK, Card: 1, Payload: []byte("abc")}))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, n, err := DecodeRequest(data)
		if err != nil {
			if req != nil || n != 0 {
				t.Fatalf("failed decode leaked state: req=%v n=%d", req, n)
			}
			return
		}
		if n < lenPrefix+requestHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if len(req.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes", len(req.Payload))
		}
		if req.Deadline < 0 {
			t.Fatalf("accepted negative deadline %v", req.Deadline)
		}
		reenc := AppendRequest(nil, req)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], reenc)
		}
	})
}
