package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzDecodeRequest drives the request decoder with arbitrary bytes.
// Two invariants must hold for every input: the decoder never panics,
// and any frame it accepts re-encodes to exactly the bytes it consumed
// (the encoding is canonical, so decode ∘ encode is the identity on
// valid frames).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{ID: 1, Fn: 7, Deadline: time.Second, Payload: []byte("seed")}))
	f.Add(AppendRequest(nil, &Request{ID: 0, Fn: 0, Payload: []byte{}}))
	f.Add(AppendRequest(nil, &Request{ID: 1<<64 - 1, Fn: 1<<16 - 1, Deadline: time.Hour,
		Payload: bytes.Repeat([]byte{0x5A}, 300)}))
	// Hostile shapes: truncated, bad magic, huge length prefix,
	// mismatched inner length, response frame fed to the request
	// decoder.
	valid := AppendRequest(nil, &Request{ID: 9, Fn: 2, Payload: []byte("abc")})
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 26, 0xA6, 0x1E, 1, 2})
	f.Add(AppendResponse(nil, &Response{ID: 9, Status: StatusOK, Card: 1, Payload: []byte("abc")}))
	// A zero deadline is the explicit "no deadline" encoding and must
	// round-trip like any other valid frame.
	f.Add(AppendRequest(nil, &Request{ID: 2, Fn: 3, Deadline: 0, Payload: []byte("z")}))
	// A header whose payload length claims MaxPayload+1 bytes: the
	// decoder must reject on the claimed length, before allocating.
	f.Add(oversizedHeader(TypeRequest))
	// Pipelined streams, the shapes a multiplexing client produces:
	// interleaved ids back to back, the same id twice in flight (the
	// server must reject the duplicate, the decoder must still parse
	// each frame), and a stream cut mid-way through the second frame.
	f.Add(pipelined(1, 2))
	f.Add(pipelined(9, 9))
	two := pipelined(3, 4)
	f.Add(two[:len(two)-5])
	// Trace context present, absent, and truncated mid-context: the
	// traced frame must round-trip canonically, the truncation must be
	// rejected before the payload-length cross-check can mislead.
	traced := AppendRequest(nil, &Request{ID: 11, Fn: 4, Deadline: time.Second,
		Payload: []byte("ctx"), Trace: TraceContext{TraceID: 0xDEAD, SpanID: 0xBEEF, Flags: FlagSampled}})
	f.Add(traced)
	f.Add(AppendRequest(nil, &Request{ID: 11, Fn: 4, Deadline: time.Second, Payload: []byte("ctx")}))
	f.Add(traced[:lenPrefix+requestHeaderLen+5])
	// Malformed context in a well-formed traced frame: zero trace id
	// and undefined flag bits are both non-canonical (the encoder would
	// never emit them) and must be rejected, not silently accepted.
	f.Add(malformedTrace(0, 7, 0))
	f.Add(malformedTrace(3, 7, 0x80))
	// Router-forwarded shapes: agilerouter decodes a client frame and
	// re-encodes it toward a backend with its own request id, its own
	// span id under the same trace id, and the remaining deadline
	// budget. Seed the inbound frame, the forwarded frame, and the
	// two-hop concatenation (both hops on one stream), traced and
	// untraced.
	inbound := &Request{ID: 21, Fn: 5, Deadline: 2 * time.Second, Payload: []byte("hop"),
		Trace: TraceContext{TraceID: 0xFEED, SpanID: 0x1001, Flags: FlagSampled}}
	forwarded := &Request{ID: 1, Fn: 5, Deadline: 1900 * time.Millisecond, Payload: []byte("hop"),
		Trace: TraceContext{TraceID: 0xFEED, SpanID: 0x2002, Flags: FlagSampled}}
	f.Add(AppendRequest(nil, forwarded))
	f.Add(AppendRequest(AppendRequest(nil, inbound), forwarded))
	f.Add(AppendRequest(
		AppendRequest(nil, &Request{ID: 22, Fn: 6, Deadline: time.Second, Payload: []byte("hop")}),
		&Request{ID: 2, Fn: 6, Deadline: 900 * time.Millisecond, Payload: []byte("hop")}))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, n, err := DecodeRequest(data)
		if err != nil {
			if req != nil || n != 0 {
				t.Fatalf("failed decode leaked state: req=%v n=%d", req, n)
			}
			return
		}
		if n < lenPrefix+requestHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if len(req.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes", len(req.Payload))
		}
		if req.Deadline < 0 {
			t.Fatalf("accepted negative deadline %v", req.Deadline)
		}
		reenc := AppendRequest(nil, req)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], reenc)
		}
	})
}

// FuzzDecodeResponse is the response-side twin: the decoder never
// panics, never accepts an oversized payload, and every accepted frame
// re-encodes canonically.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendResponse(nil, &Response{ID: 1, Status: StatusOK, Card: 0, Payload: []byte("seed")}))
	f.Add(AppendResponse(nil, &Response{ID: 0, Status: StatusInternal, Card: -1, Payload: []byte{}}))
	f.Add(AppendResponse(nil, &Response{ID: 1<<64 - 1, Status: StatusUnavailable, Card: 1<<15 - 1,
		Payload: bytes.Repeat([]byte{0xC3}, 300)}))
	valid := AppendResponse(nil, &Response{ID: 9, Status: StatusNotFound, Card: 2, Payload: []byte("abc")})
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// A request frame fed to the response decoder must be rejected on
	// frame type.
	f.Add(AppendRequest(nil, &Request{ID: 9, Fn: 2, Payload: []byte("abc")}))
	f.Add(oversizedHeader(TypeResponse))
	// Out-of-order pipelined responses: interleaved ids, a duplicated
	// id (a demuxing client drops the unmatched one), and a stream cut
	// mid-way through the second frame.
	f.Add(pipelinedResponses(2, 1))
	f.Add(pipelinedResponses(6, 6))
	two := pipelinedResponses(7, 8)
	f.Add(two[:len(two)-5])
	// Router-forwarded shapes: the backend's response to the router's
	// mux id followed by the router's re-encoded response to the
	// client's original id, same payload and card — both hops of a
	// proxied reply on one stream, plus an error passthrough
	// (RESOURCE_EXHAUSTED relayed verbatim to the caller).
	f.Add(AppendResponse(
		AppendResponse(nil, &Response{ID: 1, Status: StatusOK, Card: 3, Payload: []byte("hop")}),
		&Response{ID: 21, Status: StatusOK, Card: 3, Payload: []byte("hop")}))
	f.Add(AppendResponse(
		AppendResponse(nil, &Response{ID: 2, Status: StatusResourceExhausted, Card: -1, Payload: []byte("card queue full")}),
		&Response{ID: 22, Status: StatusResourceExhausted, Card: -1, Payload: []byte("card queue full")}))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, n, err := DecodeResponse(data)
		if err != nil {
			if resp != nil || n != 0 {
				t.Fatalf("failed decode leaked state: resp=%v n=%d", resp, n)
			}
			return
		}
		if n < lenPrefix+responseHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if len(resp.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes", len(resp.Payload))
		}
		reenc := AppendResponse(nil, resp)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], reenc)
		}
	})
}

// pipelined concatenates two request frames carrying the given ids —
// the on-wire shape of a multiplexed connection with two calls in
// flight.
func pipelined(id1, id2 uint64) []byte {
	b := AppendRequest(nil, &Request{ID: id1, Fn: 2, Deadline: time.Second, Payload: []byte("one")})
	return AppendRequest(b, &Request{ID: id2, Fn: 3, Payload: []byte("two")})
}

// pipelinedResponses concatenates two response frames carrying the
// given ids — responses arriving out of submission order.
func pipelinedResponses(id1, id2 uint64) []byte {
	b := AppendResponse(nil, &Response{ID: id1, Status: StatusOK, Card: 0, Payload: []byte("one")})
	return AppendResponse(b, &Response{ID: id2, Status: StatusOK, Card: 1, Payload: []byte("two")})
}

// malformedTrace hand-assembles a VersionTraced request frame carrying
// the given context verbatim — shapes the encoder refuses to emit
// (zero trace id, undefined flag bits) that the decoder must reject to
// keep decode ∘ encode the identity.
func malformedTrace(traceID, spanID uint64, flags uint8) []byte {
	payload := []byte("p")
	b := make([]byte, 0, lenPrefix+requestHeaderLenTraced+len(payload))
	b = binary.BigEndian.AppendUint32(b, uint32(requestHeaderLenTraced+len(payload)))
	b = binary.BigEndian.AppendUint16(b, Magic)
	b = append(b, VersionTraced, TypeRequest)
	b = binary.BigEndian.AppendUint64(b, 1) // id
	b = binary.BigEndian.AppendUint16(b, 7) // fn
	b = binary.BigEndian.AppendUint64(b, 0) // deadline
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint64(b, traceID)
	b = binary.BigEndian.AppendUint64(b, spanID)
	b = append(b, flags)
	return append(b, payload...)
}

// oversizedHeader builds a frame header of the given type whose payload
// length field claims MaxPayload+1 bytes (with a matching frame length
// and no body) — the shape a hostile peer would use to balloon the
// decoder's allocation.
func oversizedHeader(frameType byte) []byte {
	headerLen := requestHeaderLen
	if frameType == TypeResponse {
		headerLen = responseHeaderLen
	}
	b := make([]byte, 0, lenPrefix+headerLen)
	b = binary.BigEndian.AppendUint32(b, uint32(headerLen+MaxPayload+1))
	b = binary.BigEndian.AppendUint16(b, Magic)
	b = append(b, Version, frameType)
	b = binary.BigEndian.AppendUint64(b, 1) // id
	switch frameType {
	case TypeRequest:
		b = binary.BigEndian.AppendUint16(b, 7) // fn
		b = binary.BigEndian.AppendUint64(b, 0) // deadline
	case TypeResponse:
		b = append(b, byte(StatusOK))
		b = binary.BigEndian.AppendUint16(b, 0) // card
	}
	b = binary.BigEndian.AppendUint32(b, MaxPayload+1)
	return b
}
