// Package wire defines the co-processor's network framing: a
// length-prefixed binary protocol carrying versioned request and
// response frames over any byte stream (agilenetd speaks it over TCP).
//
// Every frame is
//
//	uint32  frame length (bytes that follow, big-endian)
//	uint16  magic 0xA61E
//	uint8   protocol version (1)
//	uint8   frame type (1 = request, 2 = response)
//	...     type-specific header
//	[]byte  payload
//
// A request header carries the request id (client-chosen, echoed back),
// the function id, a relative deadline in nanoseconds (0 = none — sent
// relative rather than absolute so client and server clocks never need
// agreement), and an explicit payload length that must agree with the
// frame length, giving decoders a cheap consistency cross-check. A
// response header carries the echoed id, a status code, the serving
// card (-1 when no card was reached), and the payload length; the
// payload is the function output on StatusOK and a human-readable
// diagnostic otherwise.
//
// Trace context is version-gated: a request carrying distributed-trace
// context (trace id, parent span id, flag bits) is encoded as a
// VersionTraced frame whose header grows by TraceContextLen bytes
// between the payload-length field and the payload; a request without
// context encodes as the original Version frame, byte-identical to
// pre-trace builds, so old peers interoperate as long as tracing is
// off or sampled out. Decoders accept both versions but are strict
// about canonical form: a VersionTraced frame whose context would
// never have been emitted (zero trace id, unknown flag bits) is
// rejected with ErrBadTraceContext.
//
// Decoding is strict: bad magic, unknown version, wrong frame type,
// oversized frames and length mismatches are each rejected with a
// distinct sentinel error, and a successful decode re-encodes to the
// identical bytes (the canonical-form property the fuzz target checks).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Framing constants.
const (
	Magic   = 0xA61E
	Version = 1

	// VersionTraced marks a request frame whose header carries trace
	// context. Responses are never traced on the wire (the reply rides
	// the request's span), so VersionTraced is a request-only version.
	VersionTraced = 2

	TypeRequest  = 1
	TypeResponse = 2

	// MaxPayload bounds a frame's payload; anything larger is rejected
	// before allocation, so a hostile length prefix cannot balloon
	// memory.
	MaxPayload = 16 << 20

	// TraceContextLen is the size of the trace-context header
	// extension a VersionTraced request carries: trace id (8), parent
	// span id (8), flags (1).
	TraceContextLen = 8 + 8 + 1

	// FlagSampled marks a trace the originator decided to record; a
	// server joins the trace rather than re-rolling its own sampling
	// decision. It is the only flag bit defined; decoders reject the
	// rest so the canonical-form property survives the extension.
	FlagSampled = 0x01

	traceFlagsMask = FlagSampled

	// lenPrefix is the length-prefix size; the header sizes count the
	// bytes between the prefix and the payload.
	lenPrefix              = 4
	requestHeaderLen       = 2 + 1 + 1 + 8 + 2 + 8 + 4 // magic ver type id fn deadline paylen
	requestHeaderLenTraced = requestHeaderLen + TraceContextLen
	responseHeaderLen      = 2 + 1 + 1 + 8 + 1 + 2 + 4 // magic ver type id status card paylen
)

// Decode errors.
var (
	ErrTruncated      = errors.New("wire: truncated frame")
	ErrOversized      = errors.New("wire: frame exceeds MaxPayload")
	ErrBadMagic       = errors.New("wire: bad magic")
	ErrBadVersion     = errors.New("wire: unsupported version")
	ErrBadType        = errors.New("wire: unexpected frame type")
	ErrLengthMismatch = errors.New("wire: frame/payload length mismatch")
	ErrBadDeadline    = errors.New("wire: deadline overflows int64 nanoseconds")
	// ErrBadTraceContext rejects a VersionTraced frame whose context is
	// not canonical: a zero trace id (the encoder would have emitted a
	// Version frame) or undefined flag bits.
	ErrBadTraceContext = errors.New("wire: malformed trace context")
)

// Status codes a response can carry.
type Status uint8

const (
	StatusOK                Status = 0
	StatusInvalidArgument   Status = 1
	StatusNotFound          Status = 2
	StatusResourceExhausted Status = 3
	StatusDeadlineExceeded  Status = 4
	StatusUnavailable       Status = 5
	StatusInternal          Status = 6
)

// String names the status for logs and metrics labels.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalidArgument:
		return "invalid_argument"
	case StatusNotFound:
		return "not_found"
	case StatusResourceExhausted:
		return "resource_exhausted"
	case StatusDeadlineExceeded:
		return "deadline_exceeded"
	case StatusUnavailable:
		return "unavailable"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("status_%d", uint8(s))
	}
}

// Retryable reports whether a client may safely retry after this
// status: overload (RESOURCE_EXHAUSTED) and draining (UNAVAILABLE) are
// transient by construction; everything else would fail identically.
func (s Status) Retryable() bool {
	return s == StatusResourceExhausted || s == StatusUnavailable
}

// TraceContext is the distributed-trace context a request can carry
// across the wire: the trace the call belongs to, the caller-side span
// that is this request's parent (the client's per-attempt span), and
// flag bits (FlagSampled). The zero TraceContext means "no context"
// and encodes as a plain Version frame.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Valid reports whether the context carries a trace. A zero trace id
// is reserved as the absent value, mirroring W3C traceparent.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Sampled reports whether the originator decided to record this trace.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// Request is one call: run function Fn over Payload, answering under
// Deadline (a relative budget; 0 = no deadline). ID is chosen by the
// client and echoed in the response so a connection can pipeline.
// Trace, when Valid, propagates the caller's trace context
// (version-gating the frame to VersionTraced).
type Request struct {
	ID       uint64
	Fn       uint16
	Deadline time.Duration
	Payload  []byte
	Trace    TraceContext
}

// Response answers one request. Card is the serving card index, -1 when
// the request never reached a card. Payload holds the function output
// on StatusOK and a diagnostic message otherwise.
type Response struct {
	ID      uint64
	Status  Status
	Card    int16
	Payload []byte
}

// bufPool recycles frame buffers across the encode (WriteRequest /
// WriteResponse) and read (readFrame) hot paths. The copying decoders
// free a buffer the moment its frame has been decoded or written; the
// zero-copy readers hand the buffer out as a Frame whose payload stays
// aliased until the caller Releases it. The pool stores *[]byte to
// keep the slice header off the heap on every Put.
var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf fetches a pooled buffer with at least n bytes of capacity,
// sliced to zero length.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:0]
	return bp
}

// putBuf returns a buffer to the pool. Oversized buffers are dropped so
// one MaxPayload frame cannot pin 16 MiB for the process lifetime.
func putBuf(bp *[]byte) {
	if cap(*bp) <= 1<<20 {
		bufPool.Put(bp)
	}
}

// AppendRequest appends req's canonical encoding to dst: a Version
// frame when req.Trace is absent, a VersionTraced frame carrying the
// context otherwise.
func AppendRequest(dst []byte, req *Request) []byte {
	headerLen, version := requestHeaderLen, byte(Version)
	if req.Trace.Valid() {
		headerLen, version = requestHeaderLenTraced, VersionTraced
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+len(req.Payload)))
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, version, TypeRequest)
	dst = binary.BigEndian.AppendUint64(dst, req.ID)
	dst = binary.BigEndian.AppendUint16(dst, req.Fn)
	dl := req.Deadline
	if dl < 0 {
		dl = 0
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(dl.Nanoseconds()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Payload)))
	if req.Trace.Valid() {
		dst = binary.BigEndian.AppendUint64(dst, req.Trace.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, req.Trace.SpanID)
		dst = append(dst, req.Trace.Flags&traceFlagsMask)
	}
	return append(dst, req.Payload...)
}

// AppendResponse appends resp's canonical encoding to dst.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(responseHeaderLen+len(resp.Payload)))
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, TypeResponse)
	dst = binary.BigEndian.AppendUint64(dst, resp.ID)
	dst = append(dst, byte(resp.Status))
	dst = binary.BigEndian.AppendUint16(dst, uint16(resp.Card))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Payload)))
	return append(dst, resp.Payload...)
}

// checkFrame validates the length prefix and the common header shared
// by both frame types, returning the frame body (everything after the
// prefix) and the header length for the frame's version. tracedLen is
// the header length of a VersionTraced frame, or headerLen itself for
// frame types that have no traced form (responses), in which case
// VersionTraced is rejected like any other unknown version.
func checkFrame(b []byte, wantType byte, headerLen, tracedLen int) ([]byte, int, error) {
	if len(b) < lenPrefix {
		return nil, 0, ErrTruncated
	}
	frameLen := int(binary.BigEndian.Uint32(b))
	if frameLen > tracedLen+MaxPayload {
		return nil, 0, ErrOversized
	}
	if frameLen < headerLen || len(b)-lenPrefix < frameLen {
		return nil, 0, ErrTruncated
	}
	body := b[lenPrefix : lenPrefix+frameLen]
	if binary.BigEndian.Uint16(body) != Magic {
		return nil, 0, ErrBadMagic
	}
	switch {
	case body[2] == Version:
	case body[2] == VersionTraced && tracedLen > headerLen:
		headerLen = tracedLen
		if frameLen < headerLen {
			return nil, 0, ErrTruncated
		}
	default:
		return nil, 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, body[2], Version)
	}
	if body[3] != wantType {
		return nil, 0, fmt.Errorf("%w: got %d, want %d", ErrBadType, body[3], wantType)
	}
	return body, headerLen, nil
}

// DecodeRequestInto decodes one request frame from the front of b into
// *req without copying: req.Payload aliases b, so the frame buffer must
// outlive every use of the payload. It returns the bytes consumed. An
// incomplete buffer yields ErrTruncated, so stream decoders can read
// more and retry.
func DecodeRequestInto(req *Request, b []byte) (int, error) {
	body, headerLen, err := checkFrame(b, TypeRequest, requestHeaderLen, requestHeaderLenTraced)
	if err != nil {
		return 0, err
	}
	payLen := int(binary.BigEndian.Uint32(body[22:26]))
	if payLen != len(body)-headerLen {
		return 0, fmt.Errorf("%w: header says %d, frame carries %d",
			ErrLengthMismatch, payLen, len(body)-headerLen)
	}
	dlNs := binary.BigEndian.Uint64(body[14:22])
	if dlNs > math.MaxInt64 {
		return 0, ErrBadDeadline
	}
	if headerLen == requestHeaderLenTraced {
		req.Trace.TraceID = binary.BigEndian.Uint64(body[26:34])
		req.Trace.SpanID = binary.BigEndian.Uint64(body[34:42])
		req.Trace.Flags = body[42]
		if !req.Trace.Valid() || req.Trace.Flags&^uint8(traceFlagsMask) != 0 {
			return 0, ErrBadTraceContext
		}
	} else {
		req.Trace = TraceContext{}
	}
	req.ID = binary.BigEndian.Uint64(body[4:12])
	req.Fn = binary.BigEndian.Uint16(body[12:14])
	req.Deadline = time.Duration(dlNs)
	req.Payload = body[headerLen:]
	return lenPrefix + len(body), nil
}

// DecodeRequest decodes one request frame from the front of b,
// returning the bytes consumed. The payload is copied out of b, so the
// request owns its memory (the zero-copy variant is DecodeRequestInto).
func DecodeRequest(b []byte) (*Request, int, error) {
	var req Request
	n, err := DecodeRequestInto(&req, b)
	if err != nil {
		return nil, 0, err
	}
	req.Payload = append([]byte(nil), req.Payload...)
	return &req, n, nil
}

// DecodeResponseInto decodes one response frame from the front of b
// into *resp without copying: resp.Payload aliases b. It returns the
// bytes consumed.
func DecodeResponseInto(resp *Response, b []byte) (int, error) {
	body, _, err := checkFrame(b, TypeResponse, responseHeaderLen, responseHeaderLen)
	if err != nil {
		return 0, err
	}
	payLen := int(binary.BigEndian.Uint32(body[15:19]))
	if payLen != len(body)-responseHeaderLen {
		return 0, fmt.Errorf("%w: header says %d, frame carries %d",
			ErrLengthMismatch, payLen, len(body)-responseHeaderLen)
	}
	resp.ID = binary.BigEndian.Uint64(body[4:12])
	resp.Status = Status(body[12])
	resp.Card = int16(binary.BigEndian.Uint16(body[13:15]))
	resp.Payload = body[responseHeaderLen:]
	return lenPrefix + len(body), nil
}

// DecodeResponse decodes one response frame from the front of b,
// returning the bytes consumed. The payload is copied out of b (the
// zero-copy variant is DecodeResponseInto).
func DecodeResponse(b []byte) (*Response, int, error) {
	var resp Response
	n, err := DecodeResponseInto(&resp, b)
	if err != nil {
		return nil, 0, err
	}
	resp.Payload = append([]byte(nil), resp.Payload...)
	return &resp, n, nil
}

// WriteRequest writes req to w as a single Write call, so a net.Conn
// needs no extra buffering to avoid torn frames.
func WriteRequest(w io.Writer, req *Request) error {
	if len(req.Payload) > MaxPayload {
		return ErrOversized
	}
	bp := getBuf(lenPrefix + requestHeaderLenTraced + len(req.Payload))
	*bp = AppendRequest(*bp, req)
	_, err := w.Write(*bp)
	putBuf(bp)
	return err
}

// WriteResponse writes resp to w as a single Write call.
func WriteResponse(w io.Writer, resp *Response) error {
	if len(resp.Payload) > MaxPayload {
		return ErrOversized
	}
	bp := getBuf(lenPrefix + responseHeaderLen + len(resp.Payload))
	*bp = AppendResponse(*bp, resp)
	_, err := w.Write(*bp)
	putBuf(bp)
	return err
}

// readFrame reads one length-prefixed frame from r into a pooled
// buffer. The length prefix is bounds-checked before the body is sized
// (maxHeaderLen is the largest header any accepted version carries).
// The caller must putBuf the returned buffer once the frame is decoded
// (both decoders copy the payload out, so recycling is safe).
func readFrame(r io.Reader, headerLen, maxHeaderLen int) (*[]byte, error) {
	// The prefix is read straight into the pooled buffer: a local
	// array would escape through the io.Reader interface and cost an
	// allocation per frame.
	bp := getBuf(lenPrefix)
	if _, err := io.ReadFull(r, (*bp)[:lenPrefix]); err != nil {
		putBuf(bp)
		return nil, err // io.EOF at a frame boundary = clean close
	}
	frameLen := int(binary.BigEndian.Uint32((*bp)[:lenPrefix]))
	if frameLen > maxHeaderLen+MaxPayload {
		putBuf(bp)
		return nil, ErrOversized
	}
	if frameLen < headerLen {
		putBuf(bp)
		return nil, ErrTruncated
	}
	total := lenPrefix + frameLen
	if cap(*bp) < total {
		grown := make([]byte, total)
		copy(grown, (*bp)[:lenPrefix])
		*bp = grown
	}
	buf := (*bp)[:total]
	*bp = buf
	if _, err := io.ReadFull(r, buf[lenPrefix:]); err != nil {
		putBuf(bp)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	return bp, nil
}

// Frame is a handle on a pooled frame buffer whose bytes a zero-copy
// decode still references. Release returns the buffer to the pool; the
// aliased payload must not be used afterwards. The zero Frame is valid
// and Release on it is a no-op, so error paths need no nil checks.
type Frame struct {
	bp *[]byte
}

// Release recycles the frame buffer. Call exactly once, after the last
// use of any payload that aliases it.
func (f Frame) Release() {
	if f.bp != nil {
		putBuf(f.bp)
	}
}

// ReadRequestFrame reads and decodes one request frame from r into
// *req without copying the payload: req.Payload aliases the returned
// Frame's pooled buffer, which the caller must Release once the payload
// is no longer referenced (for a served request, after the response is
// written). This is the zero-allocation read path the server runs per
// request.
func ReadRequestFrame(r io.Reader, req *Request) (Frame, error) {
	bp, err := readFrame(r, requestHeaderLen, requestHeaderLenTraced)
	if err != nil {
		return Frame{}, err
	}
	if _, err := DecodeRequestInto(req, *bp); err != nil {
		putBuf(bp)
		return Frame{}, err
	}
	return Frame{bp: bp}, nil
}

// ReadResponseFrame is the response-side zero-copy read:
// resp.Payload aliases the returned Frame until Release.
func ReadResponseFrame(r io.Reader, resp *Response) (Frame, error) {
	bp, err := readFrame(r, responseHeaderLen, responseHeaderLen)
	if err != nil {
		return Frame{}, err
	}
	if _, err := DecodeResponseInto(resp, *bp); err != nil {
		putBuf(bp)
		return Frame{}, err
	}
	return Frame{bp: bp}, nil
}

// ReadRequest reads and decodes one request frame from r. A clean
// close at a frame boundary returns io.EOF; a close mid-frame returns
// ErrTruncated. The payload is copied, so the request owns its memory
// (the zero-copy variant is ReadRequestFrame).
func ReadRequest(r io.Reader) (*Request, error) {
	bp, err := readFrame(r, requestHeaderLen, requestHeaderLenTraced)
	if err != nil {
		return nil, err
	}
	req, _, err := DecodeRequest(*bp)
	putBuf(bp)
	return req, err
}

// ReadResponse reads and decodes one response frame from r.
func ReadResponse(r io.Reader) (*Response, error) {
	bp, err := readFrame(r, responseHeaderLen, responseHeaderLen)
	if err != nil {
		return nil, err
	}
	resp, _, err := DecodeResponse(*bp)
	putBuf(bp)
	return resp, err
}
