package wire

import (
	"bytes"
	"io"
	"testing"
)

// The wire benchmarks report allocations: the frame buffers on the
// encode and read paths come from a sync.Pool, so steady-state
// allocs/op must not scale with payload size. The copying decoders
// still pay one payload allocation (their API contract: the caller
// owns the result); the RequestPath benchmarks drive the zero-copy
// Frame variants, which must hold 0 allocs/op end to end.

func benchPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + 3)
	}
	return p
}

func BenchmarkWriteRequest(b *testing.B) {
	req := &Request{ID: 42, Fn: 7, Payload: benchPayload(4096)}
	b.ReportAllocs()
	b.SetBytes(int64(lenPrefix + requestHeaderLen + len(req.Payload)))
	for i := 0; i < b.N; i++ {
		if err := WriteRequest(io.Discard, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteResponse(b *testing.B) {
	resp := &Response{ID: 42, Status: StatusOK, Card: 1, Payload: benchPayload(4096)}
	b.ReportAllocs()
	b.SetBytes(int64(lenPrefix + responseHeaderLen + len(resp.Payload)))
	for i := 0; i < b.N; i++ {
		if err := WriteResponse(io.Discard, resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRequest(b *testing.B) {
	frame := AppendRequest(nil, &Request{ID: 42, Fn: 7, Payload: benchPayload(4096)})
	rd := bytes.NewReader(frame)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, err := ReadRequest(rd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadResponse(b *testing.B) {
	frame := AppendResponse(nil, &Response{ID: 42, Status: StatusOK, Card: 1, Payload: benchPayload(4096)})
	rd := bytes.NewReader(frame)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, err := ReadResponse(rd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerRequestPath is the server's per-request wire work,
// end to end: read a request zero-copy, hand the aliased payload
// onward (the cluster submit boundary), answer with a response whose
// payload needs no staging copy, and release the frame. The whole path
// must stay at 0 allocs/op — the acceptance bar the CI
// alloc-regression step greps for.
func BenchmarkServerRequestPath(b *testing.B) {
	frame := AppendRequest(nil, &Request{ID: 42, Fn: 7, Payload: benchPayload(4096)})
	rd := bytes.NewReader(frame)
	var req Request
	var resp Response
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		fr, err := ReadRequestFrame(rd, &req)
		if err != nil {
			b.Fatal(err)
		}
		// The response payload aliases the request's — standing in for a
		// function output handed straight to the encoder, no staging
		// copy in between.
		resp.ID, resp.Status, resp.Card, resp.Payload = req.ID, StatusOK, 0, req.Payload
		if err := WriteResponse(io.Discard, &resp); err != nil {
			b.Fatal(err)
		}
		fr.Release()
	}
}

// BenchmarkClientRequestPath is the client's per-call wire work: write
// the request, read the response zero-copy, release. Also 0 allocs/op.
func BenchmarkClientRequestPath(b *testing.B) {
	req := &Request{ID: 42, Fn: 7, Payload: benchPayload(4096)}
	frame := AppendResponse(nil, &Response{ID: 42, Status: StatusOK, Card: 1, Payload: benchPayload(4096)})
	rd := bytes.NewReader(frame)
	var resp Response
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if err := WriteRequest(io.Discard, req); err != nil {
			b.Fatal(err)
		}
		rd.Reset(frame)
		fr, err := ReadResponseFrame(rd, &resp)
		if err != nil {
			b.Fatal(err)
		}
		if resp.ID != req.ID {
			b.Fatal("id mismatch")
		}
		fr.Release()
	}
}

// BenchmarkRoundTrip drives a full request+response round trip through
// one in-memory buffer, the shape the server and client loops execute
// per call.
func BenchmarkRoundTrip(b *testing.B) {
	req := &Request{ID: 42, Fn: 7, Payload: benchPayload(4096)}
	resp := &Response{ID: 42, Status: StatusOK, Card: 0, Payload: benchPayload(4096)}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteRequest(&buf, req); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadRequest(&buf); err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		if err := WriteResponse(&buf, resp); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadResponse(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerRequestPathTraced is BenchmarkServerRequestPath with
// trace context on the frame — the wire cost of a sampled request. The
// trace header rides the pooled buffers, so this path must also hold
// 0 allocs/op (the CI alloc gate's RequestPath prefix covers it).
func BenchmarkServerRequestPathTraced(b *testing.B) {
	frame := AppendRequest(nil, &Request{ID: 42, Fn: 7, Payload: benchPayload(4096),
		Trace: TraceContext{TraceID: 0xF00D, SpanID: 0xCAFE, Flags: FlagSampled}})
	rd := bytes.NewReader(frame)
	var req Request
	var resp Response
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		fr, err := ReadRequestFrame(rd, &req)
		if err != nil {
			b.Fatal(err)
		}
		if !req.Trace.Valid() || !req.Trace.Sampled() {
			b.Fatal("trace context lost on the read path")
		}
		resp.ID, resp.Status, resp.Card, resp.Payload = req.ID, StatusOK, 0, req.Payload
		if err := WriteResponse(io.Discard, &resp); err != nil {
			b.Fatal(err)
		}
		fr.Release()
	}
}

// BenchmarkClientRequestPathTraced is the client-side twin: encoding
// the context costs 17 header bytes, never an allocation.
func BenchmarkClientRequestPathTraced(b *testing.B) {
	req := &Request{ID: 42, Fn: 7, Payload: benchPayload(4096),
		Trace: TraceContext{TraceID: 0xF00D, SpanID: 0xCAFE, Flags: FlagSampled}}
	frame := AppendResponse(nil, &Response{ID: 42, Status: StatusOK, Card: 1, Payload: benchPayload(4096)})
	rd := bytes.NewReader(frame)
	var resp Response
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if err := WriteRequest(io.Discard, req); err != nil {
			b.Fatal(err)
		}
		rd.Reset(frame)
		fr, err := ReadResponseFrame(rd, &resp)
		if err != nil {
			b.Fatal(err)
		}
		if resp.ID != req.ID {
			b.Fatal("id mismatch")
		}
		fr.Release()
	}
}
