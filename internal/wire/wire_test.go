package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{ID: 1, Fn: 7, Deadline: 250 * time.Millisecond, Payload: []byte("hello fabric")},
		{ID: 0, Fn: 0, Deadline: 0, Payload: []byte{0}},
		{ID: 1<<64 - 1, Fn: 1<<16 - 1, Deadline: time.Hour, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{ID: 42, Fn: 3, Payload: []byte{}},
	}
	for i, req := range cases {
		b := AppendRequest(nil, req)
		got, n, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(b))
		}
		if got.ID != req.ID || got.Fn != req.Fn || got.Deadline != req.Deadline ||
			!bytes.Equal(got.Payload, req.Payload) {
			t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{ID: 9, Status: StatusOK, Card: 3, Payload: []byte("output")},
		{ID: 10, Status: StatusResourceExhausted, Card: -1, Payload: []byte("server at capacity")},
		{ID: 11, Status: StatusInternal, Card: 0, Payload: nil},
	}
	for i, resp := range cases {
		b := AppendResponse(nil, resp)
		got, n, err := DecodeResponse(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(b))
		}
		if got.ID != resp.ID || got.Status != resp.Status || got.Card != resp.Card ||
			!bytes.Equal(got.Payload, resp.Payload) {
			t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, got, resp)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []*Request{
		{ID: 1, Fn: 2, Payload: []byte("a")},
		{ID: 2, Fn: 2, Deadline: time.Second, Payload: []byte("bb")},
		{ID: 3, Fn: 5, Payload: []byte("ccc")},
	}
	for _, r := range reqs {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("stream mismatch: %+v vs %+v", got, want)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("empty stream err = %v, want io.EOF", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("payload")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeRequest(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// Mid-frame stream close is distinguished from a clean close.
	if _, err := ReadRequest(bytes.NewReader(full[:len(full)-2])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("stream cut err should be ErrTruncated")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	b := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("x")})
	b[4] ^= 0xFF // first magic byte lives just past the length prefix
	if _, _, err := DecodeRequest(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("x")})
	b[6] = 99
	if _, _, err := DecodeRequest(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeWrongType(t *testing.T) {
	req := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("x")})
	if _, _, err := DecodeResponse(req); !errors.Is(err, ErrBadType) {
		t.Fatalf("response decoder took a request frame: %v", err)
	}
	// Payload long enough that the response frame passes the request
	// decoder's minimum-length gate and reaches the type check.
	resp := AppendResponse(nil, &Response{ID: 5, Status: StatusOK, Card: 0, Payload: []byte("xxxxxxxx")})
	if _, _, err := DecodeRequest(resp); !errors.Is(err, ErrBadType) {
		t.Fatalf("request decoder took a response frame: %v", err)
	}
}

func TestDecodeOversized(t *testing.T) {
	b := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("x")})
	// The oversize bound allows for the largest accepted header (the
	// traced form); one byte past it must reject before allocating.
	binary.BigEndian.PutUint32(b, uint32(requestHeaderLenTraced+MaxPayload+1))
	if _, _, err := DecodeRequest(b); !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	// The stream reader must reject the length prefix before allocating.
	if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrOversized) {
		t.Fatalf("stream err = %v, want ErrOversized", err)
	}
	if err := WriteRequest(io.Discard, &Request{ID: 1, Fn: 1, Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrOversized) {
		t.Fatalf("write err = %v, want ErrOversized", err)
	}
}

func TestDecodeLengthMismatch(t *testing.T) {
	b := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("abcd")})
	// Shrink the inner payload-length field so it disagrees with the
	// frame length.
	binary.BigEndian.PutUint32(b[lenPrefix+22:], 2)
	if _, _, err := DecodeRequest(b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestDecodeBadDeadline(t *testing.T) {
	b := AppendRequest(nil, &Request{ID: 5, Fn: 1, Payload: []byte("x")})
	binary.BigEndian.PutUint64(b[lenPrefix+14:], 1<<63)
	if _, _, err := DecodeRequest(b); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("err = %v, want ErrBadDeadline", err)
	}
}

func TestDecodeTrailingBytesLeftAlone(t *testing.T) {
	one := AppendRequest(nil, &Request{ID: 1, Fn: 1, Payload: []byte("x")})
	two := AppendRequest(append([]byte(nil), one...), &Request{ID: 2, Fn: 1, Payload: []byte("y")})
	req, n, err := DecodeRequest(two)
	if err != nil || req.ID != 1 {
		t.Fatalf("first decode: %v %+v", err, req)
	}
	req, _, err = DecodeRequest(two[n:])
	if err != nil || req.ID != 2 {
		t.Fatalf("second decode: %v %+v", err, req)
	}
}

// TestZeroCopyAliasing pins the zero-copy contract: DecodeRequestInto's
// payload aliases the input buffer (no copy), and the Frame readers
// keep the payload valid until Release.
func TestZeroCopyAliasing(t *testing.T) {
	b := AppendRequest(nil, &Request{ID: 7, Fn: 3, Payload: []byte("alias me")})
	var req Request
	n, err := DecodeRequestInto(&req, b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	b[len(b)-1] ^= 0xFF // mutating the buffer must show through the alias
	if req.Payload[len(req.Payload)-1] != 'e'^0xFF {
		t.Fatal("DecodeRequestInto copied the payload; it must alias")
	}

	var resp Response
	rb := AppendResponse(nil, &Response{ID: 7, Status: StatusOK, Card: 2, Payload: []byte("out")})
	fr, err := ReadResponseFrame(bytes.NewReader(rb), &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || !bytes.Equal(resp.Payload, []byte("out")) {
		t.Fatalf("frame read mismatch: %+v", resp)
	}
	fr.Release()
	Frame{}.Release() // the zero Frame must be a safe no-op
}

// TestReadRequestFrameStream drives the zero-copy reader over a
// pipelined stream and checks each frame against the copying reader's
// result.
func TestReadRequestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	want := []*Request{
		{ID: 1, Fn: 2, Deadline: time.Second, Payload: []byte("first")},
		{ID: 2, Fn: 9, Payload: bytes.Repeat([]byte{0x7E}, 2048)},
		{ID: 3, Fn: 2, Payload: []byte("third")},
	}
	for _, r := range want {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	var req Request
	for _, w := range want {
		fr, err := ReadRequestFrame(&buf, &req)
		if err != nil {
			t.Fatal(err)
		}
		if req.ID != w.ID || req.Fn != w.Fn || req.Deadline != w.Deadline ||
			!bytes.Equal(req.Payload, w.Payload) {
			t.Fatalf("frame mismatch: %+v vs %+v", req, w)
		}
		fr.Release()
	}
	if _, err := ReadRequestFrame(&buf, &req); err != io.EOF {
		t.Fatalf("empty stream err = %v, want io.EOF", err)
	}
	// Errors return the zero Frame and recycle internally: a truncated
	// tail must not leak a buffer or a stale decode.
	full := AppendRequest(nil, &Request{ID: 4, Fn: 1, Payload: []byte("cut")})
	if _, err := ReadRequestFrame(bytes.NewReader(full[:len(full)-1]), &req); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated err = %v, want ErrTruncated", err)
	}
}

func TestStatusStrings(t *testing.T) {
	for s := StatusOK; s <= StatusInternal; s++ {
		if s.String() == "" {
			t.Fatalf("status %d has no name", s)
		}
	}
	if Status(200).String() != "status_200" {
		t.Fatal("unknown status not labelled numerically")
	}
	if !StatusResourceExhausted.Retryable() || !StatusUnavailable.Retryable() {
		t.Fatal("overload statuses must be retryable")
	}
	if StatusOK.Retryable() || StatusInternal.Retryable() || StatusInvalidArgument.Retryable() {
		t.Fatal("non-transient statuses must not be retryable")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xA1B2C3D4E5F60718, SpanID: 0x1122334455667788, Flags: FlagSampled}
	in := &Request{ID: 77, Fn: 9, Deadline: 250 * time.Millisecond, Payload: []byte("traced"), Trace: tc}
	b := AppendRequest(nil, in)
	if b[lenPrefix+2] != VersionTraced {
		t.Fatalf("traced request encoded as version %d, want %d", b[lenPrefix+2], VersionTraced)
	}
	out, n, err := DecodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if out.Trace != tc {
		t.Fatalf("trace context = %+v, want %+v", out.Trace, tc)
	}
	if out.ID != in.ID || out.Fn != in.Fn || out.Deadline != in.Deadline || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("request fields lost through traced encoding: %+v", out)
	}
	if reenc := AppendRequest(nil, out); !bytes.Equal(reenc, b) {
		t.Fatalf("traced frame not canonical:\n in  %x\n out %x", b, reenc)
	}
	// An untraced request must stay byte-identical to the pre-trace
	// encoding (Version 1), so old peers interoperate.
	plain := AppendRequest(nil, &Request{ID: 77, Fn: 9, Deadline: 250 * time.Millisecond, Payload: []byte("traced")})
	if plain[lenPrefix+2] != Version {
		t.Fatalf("untraced request encoded as version %d, want %d", plain[lenPrefix+2], Version)
	}
	if len(plain) != len(b)-TraceContextLen {
		t.Fatalf("traced header overhead = %d bytes, want %d", len(b)-len(plain), TraceContextLen)
	}
	// Decoding a plain frame into a reused Request must clear stale
	// context from a previous traced decode.
	var reused Request
	if _, err := DecodeRequestInto(&reused, b); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequestInto(&reused, plain); err != nil {
		t.Fatal(err)
	}
	if reused.Trace.Valid() {
		t.Fatalf("stale trace context survived an untraced decode: %+v", reused.Trace)
	}
}

func TestTraceContextRejectsMalformed(t *testing.T) {
	// Zero trace id: the absent-context value must never ride a traced
	// frame (the encoder emits Version 1 for it).
	if _, _, err := DecodeRequest(malformedTrace(0, 5, FlagSampled)); !errors.Is(err, ErrBadTraceContext) {
		t.Fatalf("zero trace id err = %v, want ErrBadTraceContext", err)
	}
	// Undefined flag bits are non-canonical.
	if _, _, err := DecodeRequest(malformedTrace(5, 5, 0x02)); !errors.Is(err, ErrBadTraceContext) {
		t.Fatalf("unknown flags err = %v, want ErrBadTraceContext", err)
	}
	// A frame cut mid-context is truncated, not length-mismatched.
	traced := AppendRequest(nil, &Request{ID: 1, Fn: 1, Payload: []byte("x"),
		Trace: TraceContext{TraceID: 9, SpanID: 8, Flags: FlagSampled}})
	cut := traced[:lenPrefix+requestHeaderLen+4]
	binary.BigEndian.PutUint32(cut, uint32(len(cut)-lenPrefix))
	if _, _, err := DecodeRequest(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated context err = %v, want ErrTruncated", err)
	}
	// Responses have no traced form: a VersionTraced response frame is
	// an unknown version.
	resp := AppendResponse(nil, &Response{ID: 1, Status: StatusOK, Card: 0, Payload: []byte("y")})
	resp[lenPrefix+2] = VersionTraced
	if _, _, err := DecodeResponse(resp); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("traced response err = %v, want ErrBadVersion", err)
	}
	// The sampled bit must survive the round trip and be readable.
	if !(TraceContext{TraceID: 1, Flags: FlagSampled}).Sampled() || (TraceContext{TraceID: 1}).Sampled() {
		t.Fatal("Sampled() does not reflect FlagSampled")
	}
}
