// Package workload generates the on-demand request streams the host fires
// at the co-processor in the replacement and end-to-end experiments. Four
// shapes cover the interesting regimes for the paper's LRU policy:
//
//   - uniform: no locality; every function equally likely.
//   - zipf: skewed popularity (a few hot functions), the regime where
//     recency-based eviction shines.
//   - phased: a small working set that rotates periodically, modelling an
//     appliance that switches duty (e.g. IPSec by day, batch hashing by
//     night).
//   - cyclic: strict round-robin over one-more-than-capacity functions,
//     the classic LRU adversary.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"

	"agilefpga/internal/sim"
)

// Generator yields an endless stream of function ids.
type Generator interface {
	Name() string
	Next() uint16
}

// Names lists the available generator names.
func Names() []string { return []string{"uniform", "zipf", "phased", "cyclic"} }

// New constructs the named generator over the catalogue fns.
// zipf uses skew s=1.1; phased uses a working set of 3 rotating every 50
// requests. Use the specific constructors for other parameters.
func New(name string, fns []uint16, seed uint64) (Generator, error) {
	switch name {
	case "uniform":
		return NewUniform(fns, seed)
	case "zipf":
		return NewZipf(fns, 1.1, seed)
	case "phased":
		return NewPhased(fns, 3, 50, seed)
	case "cyclic":
		return NewCyclic(fns)
	default:
		return nil, fmt.Errorf("workload: unknown generator %q", name)
	}
}

// Collect draws n requests from g.
func Collect(g Generator, n int) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func checkFns(fns []uint16) error {
	if len(fns) == 0 {
		return fmt.Errorf("workload: empty function catalogue")
	}
	return nil
}

// Uniform draws functions independently and uniformly.
type Uniform struct {
	fns []uint16
	rng *sim.RNG
}

// NewUniform returns a uniform generator over fns.
func NewUniform(fns []uint16, seed uint64) (*Uniform, error) {
	if err := checkFns(fns); err != nil {
		return nil, err
	}
	return &Uniform{fns: append([]uint16(nil), fns...), rng: sim.NewRNG(seed)}, nil
}

// Name implements Generator.
func (g *Uniform) Name() string { return "uniform" }

// Next implements Generator.
func (g *Uniform) Next() uint16 { return g.fns[g.rng.Intn(len(g.fns))] }

// Zipf draws functions with probability proportional to 1/rank^s, rank
// following the catalogue order (fns[0] is the hottest).
type Zipf struct {
	fns []uint16
	cdf []float64
	rng *sim.RNG
	s   float64
}

// NewZipf returns a Zipf generator with skew s > 0.
func NewZipf(fns []uint16, s float64, seed uint64) (*Zipf, error) {
	if err := checkFns(fns); err != nil {
		return nil, err
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf skew must be positive, got %v", s)
	}
	cdf := make([]float64, len(fns))
	sum := 0.0
	for i := range fns {
		sum += 1 / powf(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{fns: append([]uint16(nil), fns...), cdf: cdf, rng: sim.NewRNG(seed), s: s}, nil
}

// powf is x^y for y > 0 via exp/log-free repeated refinement — x^y =
// exp(y ln x); to stay in the stdlib-only spirit without importing math
// here we simply use the math package. (Kept as a helper for clarity.)
func powf(x, y float64) float64 {
	// x^y with x >= 1: integer part by multiplication, fractional part by
	// square roots (binary expansion), 20 bits of precision.
	ip := int(y)
	r := 1.0
	for i := 0; i < ip; i++ {
		r *= x
	}
	frac := y - float64(ip)
	base := x
	for bit := 0; bit < 20 && frac > 0; bit++ {
		base = sqrtf(base)
		frac *= 2
		if frac >= 1 {
			r *= base
			frac -= 1
		}
	}
	return r
}

// sqrtf is Newton's method square root.
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Name implements Generator.
func (g *Zipf) Name() string { return "zipf" }

// Next implements Generator.
func (g *Zipf) Next() uint16 {
	u := g.rng.Float64()
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.fns[lo]
}

// Phased rotates a contiguous working set of wsSize functions every
// phaseLen requests; within a phase, requests are uniform over the set.
type Phased struct {
	fns      []uint16
	wsSize   int
	phaseLen int
	rng      *sim.RNG
	count    int
	phase    int
}

// NewPhased returns a phased generator.
func NewPhased(fns []uint16, wsSize, phaseLen int, seed uint64) (*Phased, error) {
	if err := checkFns(fns); err != nil {
		return nil, err
	}
	if wsSize <= 0 || wsSize > len(fns) {
		return nil, fmt.Errorf("workload: working set %d out of range (catalogue %d)", wsSize, len(fns))
	}
	if phaseLen <= 0 {
		return nil, fmt.Errorf("workload: phase length %d must be positive", phaseLen)
	}
	return &Phased{
		fns: append([]uint16(nil), fns...), wsSize: wsSize,
		phaseLen: phaseLen, rng: sim.NewRNG(seed),
	}, nil
}

// Name implements Generator.
func (g *Phased) Name() string { return "phased" }

// Next implements Generator.
func (g *Phased) Next() uint16 {
	if g.count == g.phaseLen {
		g.count = 0
		g.phase++
	}
	g.count++
	start := (g.phase * g.wsSize) % len(g.fns)
	return g.fns[(start+g.rng.Intn(g.wsSize))%len(g.fns)]
}

// Cyclic is strict round-robin over the catalogue — the LRU adversary
// when the catalogue exceeds fabric capacity by one.
type Cyclic struct {
	fns []uint16
	i   int
}

// NewCyclic returns a cyclic generator.
func NewCyclic(fns []uint16) (*Cyclic, error) {
	if err := checkFns(fns); err != nil {
		return nil, err
	}
	return &Cyclic{fns: append([]uint16(nil), fns...)}, nil
}

// Name implements Generator.
func (g *Cyclic) Name() string { return "cyclic" }

// Next implements Generator.
func (g *Cyclic) Next() uint16 {
	fn := g.fns[g.i]
	g.i = (g.i + 1) % len(g.fns)
	return fn
}

// Markov draws requests from a first-order Markov chain: with
// probability `stick` the next request follows the deterministic
// successor ring (fns[i] → fns[i+1]), otherwise it jumps uniformly.
// stick=1 degenerates to cyclic, stick=0 to uniform; the range between
// dials how predictable the stream is — the knob the configuration
// prefetcher's payoff depends on.
type Markov struct {
	fns   []uint16
	index map[uint16]int
	stick float64
	rng   *sim.RNG
	cur   int
}

// NewMarkov returns a Markov generator with the given stickiness in
// [0, 1].
func NewMarkov(fns []uint16, stick float64, seed uint64) (*Markov, error) {
	if err := checkFns(fns); err != nil {
		return nil, err
	}
	if stick < 0 || stick > 1 {
		return nil, fmt.Errorf("workload: markov stickiness %v outside [0,1]", stick)
	}
	idx := make(map[uint16]int, len(fns))
	for i, fn := range fns {
		idx[fn] = i
	}
	return &Markov{
		fns: append([]uint16(nil), fns...), index: idx,
		stick: stick, rng: sim.NewRNG(seed),
	}, nil
}

// Name implements Generator.
func (g *Markov) Name() string { return "markov" }

// Next implements Generator.
func (g *Markov) Next() uint16 {
	if g.rng.Float64() < g.stick {
		g.cur = (g.cur + 1) % len(g.fns)
	} else {
		g.cur = g.rng.Intn(len(g.fns))
	}
	return g.fns[g.cur]
}

// Trace replays a fixed request sequence, then repeats it.
type Trace struct {
	seq []uint16
	i   int
}

// NewTrace returns a generator replaying seq.
func NewTrace(seq []uint16) (*Trace, error) {
	if err := checkFns(seq); err != nil {
		return nil, err
	}
	return &Trace{seq: append([]uint16(nil), seq...)}, nil
}

// Name implements Generator.
func (g *Trace) Name() string { return "trace" }

// Next implements Generator.
func (g *Trace) Next() uint16 {
	fn := g.seq[g.i]
	g.i = (g.i + 1) % len(g.seq)
	return fn
}
