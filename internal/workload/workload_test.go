package workload

import (
	"testing"
)

var cat = []uint16{1, 2, 3, 4, 5, 6, 7, 8}

func TestNew(t *testing.T) {
	for _, name := range Names() {
		g, err := New(name, cat, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("Name = %q, want %q", g.Name(), name)
		}
	}
	if _, err := New("burst", cat, 1); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := New("uniform", nil, 1); err == nil {
		t.Error("empty catalogue accepted")
	}
}

func TestAllGeneratorsStayInCatalogue(t *testing.T) {
	valid := map[uint16]bool{}
	for _, fn := range cat {
		valid[fn] = true
	}
	for _, name := range Names() {
		g, _ := New(name, cat, 7)
		for i := 0; i < 2000; i++ {
			if fn := g.Next(); !valid[fn] {
				t.Fatalf("%s: emitted %d outside catalogue", name, fn)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := New(name, cat, 42)
		b, _ := New(name, cat, 42)
		for i := 0; i < 500; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s: same-seed streams diverged", name)
			}
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	g, _ := NewUniform(cat, 3)
	counts := map[uint16]int{}
	n := 16000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	want := n / len(cat)
	for _, fn := range cat {
		if c := counts[fn]; c < want/2 || c > want*2 {
			t.Errorf("fn %d: count %d, expected ≈%d", fn, c, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewZipf(cat, 1.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint16]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next()]++
	}
	// Rank 0 must dominate rank 7 by a wide margin.
	if counts[cat[0]] < 4*counts[cat[7]] {
		t.Errorf("insufficient skew: hot %d vs cold %d", counts[cat[0]], counts[cat[7]])
	}
	// Monotone-ish decrease across well-separated ranks.
	if counts[cat[0]] < counts[cat[4]] {
		t.Errorf("rank 0 (%d) colder than rank 4 (%d)", counts[cat[0]], counts[cat[4]])
	}
	if _, err := NewZipf(cat, 0, 1); err == nil {
		t.Error("zero skew accepted")
	}
}

func TestPhasedRotatesWorkingSet(t *testing.T) {
	g, err := NewPhased(cat, 2, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 0 draws only from {cat[0], cat[1]}.
	for i := 0; i < 10; i++ {
		fn := g.Next()
		if fn != cat[0] && fn != cat[1] {
			t.Fatalf("phase 0 emitted %d", fn)
		}
	}
	// Phase 1 draws only from {cat[2], cat[3]}.
	for i := 0; i < 10; i++ {
		fn := g.Next()
		if fn != cat[2] && fn != cat[3] {
			t.Fatalf("phase 1 emitted %d", fn)
		}
	}
	if _, err := NewPhased(cat, 0, 10, 1); err == nil {
		t.Error("zero working set accepted")
	}
	if _, err := NewPhased(cat, 99, 10, 1); err == nil {
		t.Error("oversized working set accepted")
	}
	if _, err := NewPhased(cat, 2, 0, 1); err == nil {
		t.Error("zero phase length accepted")
	}
}

func TestCyclicRoundRobin(t *testing.T) {
	g, _ := NewCyclic([]uint16{5, 6, 7})
	want := []uint16{5, 6, 7, 5, 6, 7, 5}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("position %d: got %d, want %d", i, got, w)
		}
	}
}

func TestTraceReplays(t *testing.T) {
	g, err := NewTrace([]uint16{9, 9, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{9, 9, 4, 9, 9, 4}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("position %d: got %d, want %d", i, got, w)
		}
	}
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestMarkovStickinessExtremes(t *testing.T) {
	// stick=1: pure successor ring (cyclic shifted by one).
	g, err := NewMarkov(cat, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := g.Next()
	for i := 0; i < 50; i++ {
		next := g.Next()
		wantIdx := -1
		for j, fn := range cat {
			if fn == prev {
				wantIdx = (j + 1) % len(cat)
			}
		}
		if next != cat[wantIdx] {
			t.Fatalf("stick=1 broke the ring at step %d", i)
		}
		prev = next
	}
	// stick=0: roughly uniform.
	g0, _ := NewMarkov(cat, 0, 5)
	counts := map[uint16]int{}
	for i := 0; i < 8000; i++ {
		counts[g0.Next()]++
	}
	for _, fn := range cat {
		if c := counts[fn]; c < 500 || c > 1500 {
			t.Errorf("stick=0 fn %d count %d, expected ≈1000", fn, c)
		}
	}
	// Middling stickiness: successor transitions dominate.
	gm, _ := NewMarkov(cat, 0.8, 5)
	prev = gm.Next()
	succ := 0
	n := 4000
	for i := 0; i < n; i++ {
		next := gm.Next()
		for j, fn := range cat {
			if fn == prev && next == cat[(j+1)%len(cat)] {
				succ++
			}
		}
		prev = next
	}
	if frac := float64(succ) / float64(n); frac < 0.7 || frac > 0.95 {
		t.Errorf("stick=0.8 successor fraction %.2f", frac)
	}
	if _, err := NewMarkov(cat, 1.5, 1); err == nil {
		t.Error("out-of-range stickiness accepted")
	}
	if _, err := NewMarkov(nil, 0.5, 1); err == nil {
		t.Error("empty catalogue accepted")
	}
}

func TestCollect(t *testing.T) {
	g, _ := NewCyclic([]uint16{1, 2})
	got := Collect(g, 5)
	want := []uint16{1, 2, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Collect = %v", got)
		}
	}
}

func TestPowfAgainstKnownValues(t *testing.T) {
	cases := []struct {
		x, y, want float64
	}{
		{2, 2, 4}, {2, 0.5, 1.41421356}, {3, 1.1, 3.34838},
		{10, 1, 10}, {5, 0, 1},
	}
	for _, c := range cases {
		got := powf(c.x, c.y)
		if diff := got - c.want; diff > 0.001 || diff < -0.001 {
			t.Errorf("powf(%v, %v) = %v, want ≈%v", c.x, c.y, got, c.want)
		}
	}
}
