package agilefpga

import (
	"io"
	"net/http"
	"time"

	"agilefpga/internal/metrics"
	"agilefpga/internal/trace"
)

// Metrics is the public face of a card's (or cluster's) telemetry
// registry: per-phase latency histograms and behaviour counters keyed by
// function, phase and card. Enable it with Config.Metrics; a nil
// *Metrics is safe and renders as an empty exposition.
//
// Observation is passive — recording into the registry never advances a
// virtual clock domain — so enabling metrics changes no simulated
// latency or experiment number.
type Metrics struct {
	reg *metrics.Registry
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): histograms as cumulative _bucket/_sum/_count
// series with virtual time in seconds, counters and gauges as single
// series. Output is deterministic for a given registry state.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil || m.reg == nil {
		return nil
	}
	_, err := m.reg.WriteTo(w)
	return err
}

// Handler serves the registry over HTTP — mount it at /metrics and any
// Prometheus scraper (or curl) can read the card live.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the named histogram
// across every series whose labels match all the given key/value pairs,
// and reports how many observations backed the estimate. Zero
// observations yield (0, 0).
//
//	p95, n := m.Quantile("agile_phase_seconds", 0.95, map[string]string{"phase": "configure"})
func (m *Metrics) Quantile(name string, q float64, match map[string]string) (time.Duration, uint64) {
	if m == nil || m.reg == nil {
		return 0, 0
	}
	labels := make([]metrics.Label, 0, len(match))
	for k, v := range match {
		labels = append(labels, metrics.L(k, v))
	}
	t, n := m.reg.QuantileWhere(name, q, labels...)
	return t.Duration(), n
}

// registry exposes the internal handle to sibling files.
func (m *Metrics) registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Metrics exposes the card's telemetry registry, or nil when the card
// was built without Config.Metrics.
func (cp *CoProcessor) Metrics() *Metrics {
	if cp.inner.Metrics() == nil {
		return nil
	}
	return &Metrics{reg: cp.inner.Metrics()}
}

// Metrics exposes the cluster's shared telemetry registry (all cards
// record into one), or nil without Config.Metrics.
func (cl *Cluster) Metrics() *Metrics {
	if cl.inner.Metrics() == nil {
		return nil
	}
	return &Metrics{reg: cl.inner.Metrics()}
}

// StartTrace attaches a bounded structured event log to the card and
// returns it for export. cap bounds retained events (0 = the default
// 64k); on overflow the oldest half is dropped and accounted.
func (cp *CoProcessor) StartTrace(capacity int) *Trace {
	l := &trace.Log{Cap: capacity}
	cp.inner.SetTrace(l)
	return &Trace{log: l}
}

// StartTrace attaches one shared event log to every card, so the
// timeline interleaves all cards' events stamped with card identity.
func (cl *Cluster) StartTrace(capacity int) *Trace {
	l := &trace.Log{Cap: capacity}
	cl.inner.SetTrace(l)
	return &Trace{log: l}
}

// Trace is a handle on a live event log (see StartTrace).
type Trace struct {
	log *trace.Log
}

// Len reports retained events; Dropped reports events lost to overflow.
func (t *Trace) Len() int        { return t.log.Len() }
func (t *Trace) Dropped() uint64 { return t.log.Dropped() }

// WriteJSONL exports the log as JSON Lines (one event per line).
func (t *Trace) WriteJSONL(w io.Writer) error { return t.log.WriteJSONL(w) }

// WriteChrome exports the log as Chrome trace-event JSON: load the file
// in chrome://tracing or Perfetto to see a timeline of cards × phases.
func (t *Trace) WriteChrome(w io.Writer) error { return t.log.WriteChrome(w) }
