package agilefpga

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsDisabledByDefault(t *testing.T) {
	cp, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Metrics() != nil {
		t.Error("registry present without Config.Metrics")
	}
	// A nil *Metrics is a safe no-op.
	var m *Metrics
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil Metrics wrote output")
	}
	if d, n := m.Quantile("agile_request_seconds", 0.5, nil); d != 0 || n != 0 {
		t.Error("nil Metrics returned a quantile")
	}
}

func TestMetricsEndToEnd(t *testing.T) {
	cp, err := New(Config{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.InstallAll(); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if _, err := cp.Call("aes128", in); err != nil {
			t.Fatal(err)
		}
	}
	m := cp.Metrics()
	if m == nil {
		t.Fatal("Config.Metrics did not attach a registry")
	}
	if p95, n := m.Quantile("agile_request_seconds", 0.95, map[string]string{"fn": "aes128"}); n != 4 || p95 <= 0 {
		t.Errorf("quantile: p95=%v n=%d, want 4 observations", p95, n)
	}

	// The HTTP handler serves the exposition the scraper expects.
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE agile_phase_seconds histogram",
		`agile_phase_seconds_bucket{fn="aes128",phase="configure",le="+Inf"}`,
		`agile_requests_total{fn="aes128",result="hit"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestClusterMetricsAndTrace(t *testing.T) {
	cl, err := NewCluster(2, ModeAffinity, Config{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tr := cl.StartTrace(0)
	jobs := make([]Job, 20)
	for i := range jobs {
		in := make([]byte, 64)
		in[0] = byte(i)
		jobs[i] = Job{Function: []string{"aes128", "sha1"}[i%2], Input: in}
	}
	if _, err := cl.Serve(jobs, 2); err != nil {
		t.Fatal(err)
	}
	if cl.Metrics() == nil {
		t.Fatal("cluster registry missing")
	}
	var buf bytes.Buffer
	if err := cl.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `agile_cluster_submitted_total{card="`) {
		t.Error("exposition missing per-card dispatcher series")
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("chrome trace empty")
	}
}
