package agilefpga

import (
	"context"
	"net"
	"net/http"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/client"
	"agilefpga/internal/server"
)

// NetOptions tunes a network server (see Serve). The zero value of
// every field selects a default.
type NetOptions struct {
	// MaxInflight bounds concurrently admitted requests across all
	// connections (default 64). Excess requests are refused with
	// RESOURCE_EXHAUSTED rather than queued.
	MaxInflight int
	// BatchWindow, when > 1, enables cross-client coalescing: up to
	// BatchWindow admitted same-function requests — from any mix of
	// connections — are collected into one window and submitted to the
	// cluster as a single batch, sharing one queue slot, one
	// configuration check and one coalesced run. 0 or 1 (the default)
	// dispatches each request individually.
	BatchWindow int
	// BatchDwell bounds how long the first request of a batching window
	// waits for company before the window flushes anyway (default
	// 200µs). Only meaningful with BatchWindow > 1. Dwell is wall-clock
	// — it bounds real latency added at the network edge — and never
	// touches the simulation's virtual clocks.
	BatchDwell time.Duration
	// Tracer, if set, traces served requests: each sampled request gets
	// a server span tree (admission, queue wait, card service, virtual
	// phases), joining the client's trace when the wire frame carried
	// context. See NewTracer.
	Tracer *Tracer
}

// NetServer is a running network front end over a Cluster (see Serve).
type NetServer struct {
	srv  *server.Server
	addr net.Addr
	done chan error
}

// Serve exposes the cluster over TCP on addr (e.g. ":7600";
// ":0" picks a free port — read it back from Addr). The server speaks
// the agilenetd wire protocol: length-prefixed binary frames carrying a
// request id, function id, relative deadline and payload, answered
// with status-coded responses. Admission control bounds in-flight
// requests, deadlines propagate into the dispatcher, and overload is
// answered explicitly so clients can back off.
//
// The cluster stays owned by the caller: Shutdown does not close it,
// and the same cluster may keep serving local calls.
func Serve(addr string, cl *Cluster, opts NetOptions) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := server.New(cl.inner, server.Options{
		MaxInflight: opts.MaxInflight,
		BatchWindow: opts.BatchWindow,
		BatchDwell:  opts.BatchDwell,
		Metrics:     cl.inner.Metrics(),
		Tracer:      opts.Tracer.tracer(),
	})
	ns := &NetServer{srv: srv, addr: ln.Addr(), done: make(chan error, 1)}
	go func() { ns.done <- srv.Serve(ln) }()
	return ns, nil
}

// Addr reports the listening address (useful with ":0").
func (s *NetServer) Addr() string { return s.addr.String() }

// DebugRequestsHandler serves the live in-flight request table as
// JSON — mount it at /debug/requests: every admitted request with its
// age, function, source connection and (when sampled) trace id.
func (s *NetServer) DebugRequestsHandler() http.Handler {
	return s.srv.DebugRequestsHandler()
}

// Shutdown gracefully drains the server: the listener closes, new
// requests are refused, in-flight requests complete and flush their
// responses. It returns ctx.Err() if the drain outlives ctx.
func (s *NetServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close shuts the server down without draining.
func (s *NetServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// DialOptions tunes a network client (see Dial). The zero value of
// every field selects a default.
type DialOptions struct {
	// PoolSize bounds multiplexed connections (default 4). Concurrent
	// calls are pipelined over the pool — each connection carries many
	// requests in flight and responses demultiplex by request id — so
	// the pool never grows past PoolSize no matter the concurrency.
	PoolSize int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// MaxRetries bounds retries after the first attempt (default 4;
	// negative disables retries). Only transient failures are retried:
	// RESOURCE_EXHAUSTED, UNAVAILABLE, and transport errors.
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay (default 5ms),
	// doubling per retry up to MaxBackoff (default 500ms), with uniform
	// jitter in [d/2, d).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter PRNG so retry schedules are
	// reproducible in tests; 0 (the default) draws a random seed.
	JitterSeed uint64
	// Tracer, if set, traces calls: each sampled Call roots a span,
	// every attempt becomes a child span, and the trace context rides
	// the wire so server-side spans join the same trace. See NewTracer.
	Tracer *Tracer
}

// NetClient is a multiplexing, retrying connection to a NetServer (or
// agilenetd daemon): concurrent Calls pipeline over a small connection
// pool and responses may return out of order. Safe for concurrent use.
type NetClient struct {
	c *client.Client
}

// Dial connects to a network server, validating the address with one
// eager connection.
func Dial(addr string, opts DialOptions) (*NetClient, error) {
	c, err := client.Dial(addr, client.Options{
		PoolSize:    opts.PoolSize,
		DialTimeout: opts.DialTimeout,
		MaxRetries:  opts.MaxRetries,
		BaseBackoff: opts.BaseBackoff,
		MaxBackoff:  opts.MaxBackoff,
		JitterSeed:  opts.JitterSeed,
		Tracer:      opts.Tracer.tracer(),
	})
	if err != nil {
		return nil, err
	}
	return &NetClient{c: c}, nil
}

// Call executes the named bank function remotely, returning the output
// and the serving card. The context deadline bounds the whole call
// including retries and travels to the server, which refuses to spend
// fabric time on an expired request.
func (c *NetClient) Call(ctx context.Context, name string, input []byte) ([]byte, int, error) {
	f, err := algos.ByName(name)
	if err != nil {
		return nil, -1, err
	}
	return c.c.Call(ctx, f.ID(), input)
}

// CallID is Call by function id, skipping the name lookup.
func (c *NetClient) CallID(ctx context.Context, fn uint16, input []byte) ([]byte, int, error) {
	return c.c.Call(ctx, fn, input)
}

// CallChain executes the named bank functions remotely as one on-card
// dataflow chain: the input crosses the network and the card's PCI
// link once, intermediate results stay in card RAM, and the final
// stage's output comes back. Deadlines and retries behave as in Call.
func (c *NetClient) CallChain(ctx context.Context, names []string, input []byte) ([]byte, int, error) {
	stages := make([]uint16, len(names))
	for i, name := range names {
		f, err := algos.ByName(name)
		if err != nil {
			return nil, -1, err
		}
		stages[i] = f.ID()
	}
	return c.c.CallChain(ctx, stages, input)
}

// CallChainID is CallChain by function ids, skipping the name lookups.
func (c *NetClient) CallChainID(ctx context.Context, stages []uint16, input []byte) ([]byte, int, error) {
	return c.c.CallChain(ctx, stages, input)
}

// Close closes pooled connections; in-flight calls finish first.
func (c *NetClient) Close() error { return c.c.Close() }
