package agilefpga

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestServeDialRoundTrip drives the whole public network path: a
// cluster behind Serve, a Dial client calling by name, output equality
// against the direct cluster call, /metrics-visible server series, and
// a graceful shutdown.
func TestServeDialRoundTrip(t *testing.T) {
	cl, err := NewCluster(2, ModeAffinity, Config{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv, err := Serve("127.0.0.1:0", cl, NetOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in := []byte("sixteen byte in!")
	direct, _, err := cl.Call("crc32", in)
	if err != nil {
		t.Fatal(err)
	}
	out, card, err := c.Call(context.Background(), "crc32", in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, direct.Output) {
		t.Fatalf("network output %x != direct %x", out, direct.Output)
	}
	if card < 0 || card >= 2 {
		t.Fatalf("card = %d", card)
	}

	if _, _, err := c.Call(context.Background(), "no-such-fn", in); err == nil {
		t.Fatal("unknown name accepted")
	}

	var buf bytes.Buffer
	if err := cl.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"agile_server_requests_total", "agile_server_request_seconds"} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("exposition missing %s", series)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The drained server refuses new work; the cluster still serves
	// locally.
	if _, _, err := c.Call(context.Background(), "crc32", in); err == nil {
		t.Fatal("call succeeded after shutdown")
	}
	if _, _, err := cl.Call("crc32", in); err != nil {
		t.Fatalf("local call after network shutdown: %v", err)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", DialOptions{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}
