package agilefpga

import (
	"io"
	"net/http"

	"agilefpga/internal/trace"
)

// TracerOptions configures request tracing (see NewTracer). The zero
// value of every field selects a default.
type TracerOptions struct {
	// Sample is the head-sampling probability in [0, 1]: the chance a
	// new request is traced at the source. 0 disables tracing; 1 traces
	// everything. Tail capture (the slowest-N and error rings) only
	// sees what head sampling let through.
	Sample float64
	// TailN bounds the slowest-N trace ring (default 16).
	TailN int
	// ErrorN bounds the errored-trace ring (default 32).
	ErrorN int
	// RecentN bounds the most-recently-completed ring (default 64).
	RecentN int
	// Seed fixes trace-id generation and sampling decisions for
	// reproducible tests; 0 (the default) seeds from the clock.
	Seed uint64
}

// Tracer is a distributed request tracer: attach one to a network
// client (DialOptions.Tracer) and server (NetOptions.Tracer) and every
// sampled Call becomes a span tree walking the whole request path —
// client attempt, wire hop, server admission, cluster queue wait,
// card service, and the card's virtual per-phase breakdown. Trace
// context rides the wire protocol, so client and server may live in
// different processes and still assemble the same trace.
//
// Tracing is passive: span recording never advances a virtual clock
// domain, and unsampled requests take a zero-allocation no-op path.
type Tracer struct {
	inner *trace.Tracer
}

// NewTracer starts a tracer and its collector. Close it when done.
func NewTracer(opts TracerOptions) *Tracer {
	return &Tracer{inner: trace.NewTracer(trace.TracerOptions{
		Sample:  opts.Sample,
		TailN:   opts.TailN,
		ErrorN:  opts.ErrorN,
		RecentN: opts.RecentN,
		Seed:    opts.Seed,
	})}
}

// Close stops the collector, draining pending completions into the
// capture rings. Idempotent; safe on a nil Tracer.
func (t *Tracer) Close() {
	if t != nil {
		t.inner.Close()
	}
}

// Handler serves the captured traces — mount it at /debug/traces.
// JSON by default; ?format=chrome renders Chrome trace-event format
// for chrome://tracing or Perfetto. Safe on a nil Tracer.
func (t *Tracer) Handler() http.Handler {
	if t == nil {
		return (*trace.Tracer)(nil).Handler()
	}
	return t.inner.Handler()
}

// WriteChrome exports the captured traces (slowest first) as Chrome
// trace-event JSON with one process lane per request.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return trace.WriteChromeSpans(w, nil)
	}
	return trace.WriteChromeSpans(w, t.inner.Captured())
}

// Completed counts traces the collector has filed; Dropped counts
// traces lost to collector backpressure.
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	return t.inner.Completed()
}

// Dropped counts traces lost to backpressure.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.inner.Dropped()
}

// tracer exposes the internal handle to sibling files.
func (t *Tracer) tracer() *trace.Tracer {
	if t == nil {
		return nil
	}
	return t.inner
}
